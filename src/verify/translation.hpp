#pragma once
// Translation of (MPLS network, query) into a weighted pushdown system
// (paper §4.2): control states are (last traversed link, path-NFA state)
// pairs — extended with an accumulated failure counter for the
// under-approximation — and the stack is the label stack.
//
// Over-approximation: a TE group whose activation requires c locally failed
// links contributes rules whenever c ≤ k; the total across routers may
// exceed k, hence over-approximation.  Under-approximation: the counter in
// the control state bounds the *sum* of local failures along the trace,
// which may double-count a link revisited in a loop, hence
// under-approximation (paper §4.2).

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "model/quantity.hpp"
#include "model/trace.hpp"
#include "nfa/nfa.hpp"
#include "pda/pautomaton.hpp"
#include "pda/reduction.hpp"
#include "pda/solver.hpp"
#include "query/query.hpp"

namespace aalwines::verify {

enum class Approximation : std::uint8_t { Over, Under, Exact };

/// The three query NFAs every translation needs: compiling them (regex →
/// Thompson → ε-elimination, plus two intersections with the valid-header
/// language H) is independent of the approximation, so one verify() call
/// compiles them once and shares them across the over/under dual passes —
/// and across every scenario of the exact engine.
struct CompiledNfas {
    nfa::Nfa path;           ///< B, over links
    nfa::Nfa initial_header; ///< L(a) ∩ H, over labels
    nfa::Nfa final_header;   ///< L(c) ∩ H, over labels
};

[[nodiscard]] CompiledNfas compile_query_nfas(const Network& network,
                                              const query::Query& query);

/// A frozen, session-independent image of a saturation's link footprint —
/// everything `footprint_touches` + `initial_links_touch` consult, captured
/// as three bitsets so the carry-over test outlives the live translation
/// (which may rebase away afterwards).  Valid across link-state flips only:
/// those never edit routing entries, so the out-link relation recorded at
/// snapshot time holds for every scenario of the same base network.
struct LinkFootprint {
    std::vector<bool> materialized; ///< link carries a materialized control state
    std::vector<bool> out_links;    ///< out-link of some materialized link's rule
    std::vector<bool> initial;      ///< path-NFA start candidate links

    /// Whether toggling the up/down state of `toggled` links could change
    /// the snapshotted saturation — false means its result provably carries
    /// over to the toggled network (same argument as footprint_touches).
    [[nodiscard]] bool touches(const std::vector<LinkId>& toggled) const {
        for (const auto link : toggled) {
            if (link < materialized.size() && materialized[link]) return true;
            if (link < out_links.size() && out_links[link]) return true;
            if (link < initial.size() && initial[link]) return true;
        }
        return false;
    }
};

struct TranslationOptions {
    Approximation approximation = Approximation::Over;
    /// Weight vector for the minimum-witness problem; nullptr = unweighted.
    const WeightExpr* weights = nullptr;
    /// For Approximation::Exact: the concrete failure scenario.  The PDA
    /// then encodes Definition 4 exactly — only active links, only the
    /// first active TE group per entry (deciding the query requires
    /// enumerating every such scenario, which is exponential in k; this is
    /// what the over/under pair avoids).
    const std::set<LinkId>* failed_links = nullptr;
    /// Pre-compiled query NFAs (see CompiledNfas); nullptr = compile here.
    const CompiledNfas* nfas = nullptr;
    /// Demand-driven rule materialization: construction emits *no* rules and
    /// registers the translation as the PDA's RuleProvider instead; a control
    /// state's outgoing rules (TE-group expansion × path-NFA moves × failure
    /// slots, including its op chains) are generated when post*/pre* first
    /// pops a transition out of that state.  Chain-interior states are
    /// pre-allocated from an exactly-sized pool (a rule-free counting pass
    /// over the routing table), so the state space is fixed up front and the
    /// P-automaton can share the id space safely.  reduce() becomes a no-op:
    /// the demand filter subsumes the top-of-stack pass (see reduction.cpp).
    bool lazy = false;
};

class Translation : public pda::RuleProvider {
public:
    Translation(const Network& network, const query::Query& query,
                const TranslationOptions& options);
    /// Lazy mode registers `this` as the PDA's rule provider, so the
    /// translation must stay put for the PDA's lifetime.
    Translation(const Translation&) = delete;
    Translation& operator=(const Translation&) = delete;

    [[nodiscard]] pda::Pda& pda() noexcept { return *_pda; }
    [[nodiscard]] const pda::Pda& pda() const noexcept { return *_pda; }

    /// Run the top-of-stack reduction at `level` (0 = off).  Idempotent: a
    /// second call returns the first call's stats without touching the PDA,
    /// so a translation shared across phases reduces exactly once.  A lazy
    /// translation skips the pass (stats report zero rules removed): the
    /// demand filter at materialization plays its role — see reduction.cpp.
    pda::ReductionStats reduce(int level);

    /// Rule count before the first reduce() ran (== rule_count() until
    /// then); for a lazy translation the eager-equivalent total.
    [[nodiscard]] std::size_t rules_before_reduction() const {
        if (_lazy) return _total_rules;
        return _reduced ? _reduce_stats.rules_before : _pda->rule_count();
    }

    /// Demand-driven construction active (TranslationOptions::lazy).
    [[nodiscard]] bool lazy() const noexcept { return _lazy; }

    /// Re-target this lazy translation at a patched snapshot of the same
    /// network (identical link set and label alphabet — a delta that mints a
    /// label must fall back to a cold rebuild).  The two bitmaps split the
    /// delta by how it reaches a control state's rules:
    ///
    ///   `dirty`           links whose *own* entries emit different rules —
    ///                     routing entries changed, up/down flipped (a down
    ///                     in-link emits nothing), or (weighted) anything
    ///                     that reprices its rules.
    ///   `behavior_dirty`  links whose role as an *out-link* changed — an
    ///                     up/down flip (down out-links are skipped and drop
    ///                     out of the failure budget) or (weighted) a
    ///                     distance change (reprices every rule over it).
    ///                     A pure routing-entry delta never sets these bits:
    ///                     forwarding *into* an edited link is unaffected.
    ///
    /// The affected control states — a dirty link's, or one whose entries
    /// forward over a behavior-dirty link — are un-materialized together
    /// with their chain interiors, the per-link entry index is rebuilt over
    /// the new routing table (the copy-on-write snapshot reallocates every
    /// entry), the interior pool grows by the affected links' new
    /// contribution, and the initial states are recomputed (a down link
    /// never starts a trace).  The next saturation re-demands exactly the
    /// invalidated frontier; by the match-order argument in
    /// pda::Pda::invalidate_states the answer is byte-identical to a cold
    /// recompile against the patched network.
    void rebase(const Network& network, const std::vector<bool>& dirty,
                const std::vector<bool>& behavior_dirty);

    /// Whether any *materialized* control state would be invalidated by a
    /// rebase over the bitmaps — false means the previous result provably
    /// carries over (if the initial states don't touch the delta either).
    [[nodiscard]] bool footprint_touches(const std::vector<bool>& dirty,
                                         const std::vector<bool>& behavior_dirty) const;

    /// Whether any link the path NFA can start with is flagged in `dirty`
    /// (candidate links, before the up/down filter — a link-state flip on a
    /// candidate changes initial-state membership, a distance change on one
    /// changes the weighted entry weight).
    [[nodiscard]] bool initial_links_touch(const std::vector<bool>& dirty) const;

    /// OR this translation's current footprint into `fp` (sized to the link
    /// count on first use).  Call right after a verify so the bitsets cover
    /// everything that saturation materialized; see LinkFootprint for the
    /// validity contract.
    void add_to_footprint(LinkFootprint& fp) const;

    /// Rules the eager pipeline would emit before reduction.  For a lazy
    /// translation this is computed by a rule-free counting pass at
    /// construction; compare with pda().rule_count() (the materialized
    /// subset) for the demand savings.
    [[nodiscard]] std::size_t total_rules() const noexcept { return _total_rules; }

    /// RuleProvider: emit every outgoing rule of one control state (chain
    /// interiors ride along with their owning chain).  Invoked by the PDA on
    /// first demand; not for direct use.
    void materialize_state(pda::Pda& pda, pda::StateId state) override;

    /// P-automaton accepting the initial configurations
    /// {((e₁,q₁,0), h) : h ∈ L(a) ∩ H} — the post* source.
    [[nodiscard]] pda::PAutomaton make_initial_automaton() const;

    /// P-automaton accepting the final configurations
    /// {((e,q,f), h) : q accepting, h ∈ L(c) ∩ H} — the pre* source.
    [[nodiscard]] pda::PAutomaton make_final_automaton() const;

    /// Same automata built over `backend` — a PDA with identical control
    /// states (e.g. the Moped round-tripped copy of this translation).
    /// `concrete_edges` materializes every symbolic edge set into concrete
    /// per-symbol edges (checkers without symbolic alphabets need this).
    [[nodiscard]] pda::PAutomaton make_initial_automaton(const pda::Pda& backend,
                                                         bool concrete_edges = false) const;
    [[nodiscard]] pda::PAutomaton make_final_automaton(const pda::Pda& backend,
                                                       bool concrete_edges = false) const;

    /// Control states where the path NFA accepts (post* acceptance starts).
    [[nodiscard]] const std::vector<pda::StateId>& accepting_states() const {
        return _accepting_states;
    }
    /// Control states of initial configurations (pre* acceptance starts).
    [[nodiscard]] const std::vector<pda::StateId>& initial_states() const {
        return _initial_states;
    }

    [[nodiscard]] const nfa::Nfa& initial_header_nfa() const { return _nfa_a; }
    [[nodiscard]] const nfa::Nfa& final_header_nfa() const { return _nfa_c; }

    /// Rebuild the network trace from a PDA witness (either direction).
    [[nodiscard]] std::optional<Trace> witness_to_trace(const pda::PdaWitness& witness) const;

    /// Same, for a witness whose rule ids refer to `backend` (a round-trip
    /// or concrete expansion of this translation's PDA; tags and control
    /// states must be preserved).
    [[nodiscard]] std::optional<Trace> witness_to_trace(const pda::PdaWitness& witness,
                                                        const pda::Pda& backend) const;

private:
    struct ControlInfo {
        LinkId link = k_invalid_id;     ///< last traversed link (chain: the *next* link)
        std::uint32_t nfa_state = 0;
        std::uint32_t failures = 0;     ///< accumulated (under-approximation only)
        bool chain = false;             ///< intermediate state of an op chain
    };

    /// Per-rule bookkeeping for trace reconstruction: the first rule of each
    /// forwarding chain records the link the packet is sent through.
    struct StepInfo {
        LinkId out_link = k_invalid_id;
        std::uint32_t local_failures = 0;
    };

    /// "No filter" sentinel for the per-state emission filters below.
    static constexpr std::uint32_t k_any = UINT32_MAX;

    void build_control_states();
    /// (Re)compute the post* source states from the path NFA's initial
    /// edges, excluding links a trace can never start on (administratively
    /// down; Exact: in the scenario's failure set).
    void compute_initial_states();
    void build_move_index();
    void build_rules();
    /// (Re)build the per-link routing entry index from `_network`.  for_each
    /// iterates keys in sorted order, so every bucket is label-ascending —
    /// the canonical order that keeps rebased re-materialization emitting
    /// per-state rule sequences identical to a cold build.
    void build_entry_index();
    /// Lazy construction: per-link routing entry index + the counting pass
    /// sizing the chain-state pool and the eager-equivalent rule total.
    void build_lazy_index();
    /// Eager-equivalent rule/interior counts of one in-link's entries.
    struct LinkLoad {
        std::size_t rules = 0;
        std::size_t interiors = 0;
    };
    void count_link(LinkId in_link, LinkLoad& load) const;
    /// Links whose control states a rebase must invalidate: the link itself
    /// is dirty, or one of its entries forwards over a behavior-dirty link
    /// (out-link state/distance changes alter the emitted rules or their
    /// weights without touching the in-link's own entries).
    [[nodiscard]] std::vector<char> affected_links(
        const std::vector<bool>& dirty, const std::vector<bool>& behavior_dirty) const;
    /// Emit the rules of one routing entry.  `only_q`/`only_f` restrict
    /// emission to rules leaving control state (in_link, only_q, only_f) —
    /// the per-state slice lazy materialization demands; `k_any` disables a
    /// filter (the eager whole-entry pass).
    void add_entry_rules(LinkId in_link, Label label, const RoutingEntry& groups,
                         std::uint32_t only_q = k_any, std::uint32_t only_f = k_any);
    /// Invoke `fn(rule, local_failures)` for every forwarding rule of the
    /// entry that is eligible under the approximation (TE-priority and
    /// failure-budget handling shared by emission and the counting pass).
    template <typename RuleFn>
    void for_entry_rules(LinkId in_link, const RoutingEntry& groups, RuleFn&& fn) const;
    /// Walk one op chain, driving `sink.step(index, last)` before each op
    /// and `sink.rule(pre, op, l1, l2)` per emitted rule — the single source
    /// of truth for chain shape, shared by emission (EmitSink) and the
    /// counting pass (CountSink), so lazy totals match eager emission
    /// rule-for-rule.
    template <typename Sink>
    void walk_chain(Label top, const std::vector<Op>& ops, Sink& sink) const;
    struct EmitSink;
    struct CountSink;
    void add_chain(pda::StateId from, Label top, const ForwardingRule& rule,
                   pda::StateId target, pda::Weight weight, std::uint32_t tag);
    /// A fresh chain-interior state: allocated eagerly, or drawn from the
    /// pre-sized pool in lazy mode (and marked materialized — its rules are
    /// emitted with the chain that owns it).
    [[nodiscard]] pda::StateId new_chain_state();
    [[nodiscard]] pda::Weight make_step_weight(const ForwardingRule& rule,
                                               std::uint64_t local_failures) const;
    [[nodiscard]] pda::Weight make_initial_weight(LinkId first_link) const;
    [[nodiscard]] pda::StateId control_state(LinkId link, std::uint32_t nfa_state,
                                             std::uint32_t failures) const;
    /// Attach a header NFA copy reachable from `sources`; used for both the
    /// initial and the final automaton.
    void attach_header_nfa(pda::PAutomaton& aut, const nfa::Nfa& header_nfa,
                           const std::vector<pda::StateId>& sources, bool weighted_entry,
                           bool concrete_edges) const;

    const Network* _network;
    const query::Query* _query;
    TranslationOptions _options;

    nfa::Nfa _nfa_b;            // path NFA over links
    nfa::Nfa _nfa_a;            // L(a) ∩ H over labels
    nfa::Nfa _nfa_c;            // L(c) ∩ H over labels
    /// The path NFA inverted by consumed link: (q, q') per move on `link`.
    /// Built once per translation so rule emission does not re-scan every
    /// NFA edge for every forwarding rule.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> _moves_by_link;
    std::uint32_t _failure_slots = 1; // k+1 for Under, 1 for Over

    std::unique_ptr<pda::Pda> _pda;
    std::vector<ControlInfo> _control_info; // per PDA state
    std::vector<StepInfo> _steps;           // indexed by rule tag
    std::vector<pda::StateId> _accepting_states;
    std::vector<pda::StateId> _initial_states;
    bool _reduced = false;
    pda::ReductionStats _reduce_stats;

    bool _lazy = false;
    std::size_t _total_rules = 0; ///< eager-equivalent rule count (pre-reduction)
    /// Routing entries grouped by in-link (per-state materialization needs
    /// "all entries of link e"; RoutingEntry pointers stay stable — the
    /// routing table is const for the translation's lifetime).
    std::vector<std::vector<std::pair<Label, const RoutingEntry*>>> _entries_by_link;
    /// Inverse of the rule out-link relation: `_links_into[out]` lists the
    /// in-links holding a rule that forwards over `out` (sorted, deduped).
    /// Built on first demand by affected_links; dropped whenever a rebase
    /// replaces an affected link's entry list (link-state flips never do —
    /// they leave every routing entry untouched — so sweeping a scenario
    /// axis pays the O(rules) build exactly once).
    mutable std::vector<std::vector<LinkId>> _links_into;
    /// Per-link eager-equivalent counts behind `_total_rules` and the pool
    /// size, kept so a rebase can adjust both by recounting only the
    /// affected links.
    std::vector<LinkLoad> _link_load;
    /// Chain-interior state pool: half-open [first, second) ranges consumed
    /// in order.  Construction allocates one exactly-sized range; each
    /// rebase appends a fresh (non-contiguous) range covering the affected
    /// links' full new contribution — unconsumed slack telescopes, so the
    /// pool always suffices while interiors of invalidated chains leak as
    /// inert rule-less states (they only inflate the state count, never an
    /// answer).  Materialization never adds PDA states mid-saturation.
    std::vector<std::pair<pda::StateId, pda::StateId>> _pools;
    std::size_t _pool_cursor = 0;
};

/// Memoizes the network→PDA translation across the over/under dual passes
/// of one verify() call.  The query NFAs are compiled once and shared, and
/// when the query's failure budget is zero the two approximations emit
/// rule-for-rule identical PDAs (both have a single failure slot), so they
/// share a single Translation — the second phase then skips translation and
/// reduction entirely.
class TranslationCache {
public:
    TranslationCache(const Network& network, const query::Query& query,
                     const WeightExpr* weights, bool lazy = false);

    /// Same, adopting pre-compiled query NFAs instead of compiling them
    /// here.  The sweep engine compiles one CompiledNfas per query template
    /// and shares it across every (failure budget, scenario) cell — the
    /// NFAs depend only on the query's regexes and the label table, never
    /// on k or link state, so the share is exact.  `nfas` must be non-null
    /// and compiled from an identical query against a network with the same
    /// link ids and label table.
    TranslationCache(const Network& network, const query::Query& query,
                     const WeightExpr* weights, bool lazy,
                     std::shared_ptr<const CompiledNfas> nfas);

    /// The memoized translation for `approximation` (Over or Under only;
    /// exact scenarios each need their own Translation — share nfas()).
    [[nodiscard]] Translation& translation(Approximation approximation);

    [[nodiscard]] const CompiledNfas& nfas() const {
        return _shared_nfas != nullptr ? *_shared_nfas : _nfas;
    }

    /// Re-target every built translation at a patched network snapshot (see
    /// Translation::rebase); never-built slots simply build against the new
    /// network on first demand.  The caller keeps both network snapshots
    /// alive across the call and guarantees no label was minted.
    void rebase(const Network& network, const std::vector<bool>& dirty,
                const std::vector<bool>& behavior_dirty);

    /// The slots as built so far (nullptr when the phase never ran); the
    /// incremental re-verifier inspects their demanded footprints.
    [[nodiscard]] Translation* over_or_null() noexcept { return _over.get(); }
    [[nodiscard]] Translation* under_or_null() noexcept { return _under.get(); }

    [[nodiscard]] const Network& network() const noexcept { return *_network; }

private:
    const Network* _network;
    const query::Query* _query;
    const WeightExpr* _weights;
    bool _lazy;
    CompiledNfas _nfas; ///< empty when _shared_nfas is set
    std::shared_ptr<const CompiledNfas> _shared_nfas;
    std::unique_ptr<Translation> _over;
    std::unique_ptr<Translation> _under;
};

/// The valid-header language H = mpls* smpls ip | ip as a regex (top-first).
[[nodiscard]] nfa::Regex valid_header_regex(const LabelTable& labels);

} // namespace aalwines::verify
