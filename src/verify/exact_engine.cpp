// The exact engine: decide the query by enumerating every failure scenario
// F with |F| <= k and solving an exact per-scenario PDA (Definition 4
// verbatim — only active links, only the first active TE group).  Always
// conclusive and supports weights (the minimum ranges over all scenarios),
// but the scenario count is C(|E|, 0) + ... + C(|E|, k): exponential in k.
// This is precisely the blow-up the paper's polynomial over/under pipeline
// avoids; the engine serves as a ground-truth oracle in the tests and as
// the baseline of the scaling benchmarks.

#include <algorithm>
#include <chrono>
#include <functional>

#include "telemetry/telemetry.hpp"
#include "util/errors.hpp"
#include "verify/engine.hpp"
#include "verify/translation.hpp"

namespace aalwines::verify {

namespace {

using Clock = std::chrono::steady_clock;

/// Invoke `fn(F)` for every F of up links with |F| <= k; returns false if
/// `fn` asked to stop.  Administratively-down links are excluded: they are
/// failed in every scenario already ("for free"), so including them would
/// only enumerate redundant supersets and waste budget slots.
bool for_each_failure_set(const Topology& topology, std::uint64_t k,
                          const std::function<bool(const std::set<LinkId>&)>& fn) {
    const auto links = static_cast<LinkId>(topology.link_count());
    std::set<LinkId> current;
    // Iterative enumeration by recursion over the next link to include.
    std::function<bool(LinkId, std::uint64_t)> recurse =
        [&](LinkId next, std::uint64_t remaining) -> bool {
        if (!fn(current)) return false;
        if (remaining == 0) return true;
        for (LinkId link = next; link < links; ++link) {
            if (!topology.link_up(link)) continue;
            current.insert(link);
            const bool keep_going = recurse(link + 1, remaining - 1);
            current.erase(link);
            if (!keep_going) return false;
        }
        return true;
    };
    // Calls fn on every subset of size <= k exactly once (empty set first).
    return recurse(0, k);
}

} // namespace

VerifyResult exact_verify(const Network& network, const query::Query& query,
                          const VerifyOptions& options) {
    AALWINES_SPAN("exact_verify");
    const auto start = Clock::now();
    VerifyResult result;
    result.answer = Answer::No;

    const auto domain = static_cast<pda::Symbol>(network.labels.size());
    std::size_t scenarios = 0;
    bool truncated = false;
    std::optional<pda::Weight> best;
    std::optional<Trace> best_trace;

    // Shared across all C(|E|, <=k) scenarios: the query NFAs compile once,
    // and one solver workspace amortizes the scratch allocations.
    const auto nfas = compile_query_nfas(network, query);
    pda::SolverWorkspace workspace;

    for_each_failure_set(network.topology, query.max_failures,
                         [&](const std::set<LinkId>& failed) {
        ++scenarios;
        TranslationOptions topts;
        topts.approximation = Approximation::Exact;
        topts.failed_links = &failed;
        topts.weights = options.weights;
        topts.nfas = &nfas;
        topts.lazy = use_lazy_translation(options.translation, EngineKind::Exact);
        Translation translation(network, query, topts);
        result.stats.over.pda_rules_before_reduction += translation.rules_before_reduction();
        translation.reduce(options.reduction_level);

        auto automaton = translation.make_initial_automaton();
        pda::SolverOptions sopts;
        sopts.max_iterations = options.max_iterations;
        sopts.workspace = &workspace;
        sopts.threads = options.solver_threads;
        sopts.check_accepted = [&]() {
            const auto found =
                pda::find_accepted(automaton, translation.accepting_states(),
                                   translation.final_header_nfa(), domain, &workspace);
            return found ? found->weight : pda::Weight::infinity();
        };
        const auto sat_stats = pda::post_star(automaton, sopts);
        // Per-scenario sizes accumulate; read after saturation so a lazy
        // scenario reports the rules it actually demanded.
        result.stats.over.pda_rules += translation.pda().rule_count();
        result.stats.over.pda_rules_total += translation.total_rules();
        result.stats.over.pda_rules_materialized += translation.pda().rule_count();
        result.stats.over.pda_states_materialized +=
            translation.pda().materialized_state_count();
        result.stats.over.lazy_translation = translation.lazy();
        result.stats.over.saturation_iterations += sat_stats.iterations;
        result.stats.over.automaton_transitions += sat_stats.transitions + sat_stats.epsilons;
        result.stats.over.worklist_relaxations += sat_stats.relaxations;
        result.stats.over.peak_worklist =
            std::max(result.stats.over.peak_worklist, sat_stats.peak_queue);
        result.stats.over.ran = true;
        if (sat_stats.truncated) {
            truncated = true;
            return false; // cannot trust a truncated scenario: stop
        }
        const auto accepted =
            pda::find_accepted(automaton, translation.accepting_states(),
                               translation.final_header_nfa(), domain, &workspace);
        if (!accepted) return true; // next scenario
        if (best && !(accepted->weight < *best)) return true;

        if (const auto witness = pda::unroll_post_star(automaton, *accepted)) {
            if (auto trace = translation.witness_to_trace(*witness)) {
                best = accepted->weight;
                best_trace = std::move(trace);
                result.answer = Answer::Yes;
                // Unweighted: any witness settles the query.
                if (options.weights == nullptr || options.weights->empty())
                    return false;
            }
        }
        return true;
    });

    if (truncated) {
        result.answer = Answer::Inconclusive;
        result.note = "exact: scenario saturation truncated (iteration cap)";
    } else if (result.answer == Answer::Yes) {
        if (options.build_trace) result.trace = std::move(best_trace);
        if (best) result.weight = best->components();
    }
    result.note += (result.note.empty() ? "" : "; ") + std::string("exact: ") +
                   std::to_string(scenarios) + " failure scenarios examined";
    result.stats.total_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return result;
}

} // namespace aalwines::verify
