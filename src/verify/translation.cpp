#include "verify/translation.hpp"

#include <algorithm>
#include <set>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace aalwines::verify {

using nfa::Regex;
using nfa::SymbolSet;

nfa::Regex valid_header_regex(const LabelTable& labels) {
    // Top-first: mpls* smpls ip | ip.
    auto mpls = Regex::atom(SymbolSet::of(labels.of_type(LabelType::Mpls)));
    auto smpls = Regex::atom(SymbolSet::of(labels.of_type(LabelType::MplsBos)));
    auto ip = Regex::atom(SymbolSet::of(labels.of_type(LabelType::Ip)));
    std::vector<Regex> tunnel;
    tunnel.push_back(Regex::star(std::move(mpls)));
    tunnel.push_back(std::move(smpls));
    tunnel.push_back(ip);
    std::vector<Regex> branches;
    branches.push_back(Regex::concat(std::move(tunnel)));
    branches.push_back(std::move(ip));
    return Regex::alt(std::move(branches));
}

namespace {
/// Possible strata of an unknown top-of-stack symbol during a chain.
struct TopDescriptor {
    Label known = k_invalid_label; ///< concrete symbol, if known
    bool mpls = false, bos = false, ip = false;

    [[nodiscard]] static TopDescriptor of(Label label) {
        TopDescriptor d;
        d.known = label;
        return d;
    }
    [[nodiscard]] bool is_known() const { return known != k_invalid_label; }
};

/// Strata that may lie directly below a label of type `type` in a valid
/// header: below mpls is mpls|smpls, below smpls is ip, below ip nothing.
TopDescriptor below_of(LabelType type) {
    TopDescriptor d;
    switch (type) {
        case LabelType::Mpls: d.mpls = d.bos = true; break;
        case LabelType::MplsBos: d.ip = true; break;
        case LabelType::Ip: break;
    }
    return d;
}

pda::SymbolClass class_id(LabelType type) { return static_cast<pda::SymbolClass>(type); }
} // namespace

CompiledNfas compile_query_nfas(const Network& network, const query::Query& query) {
    AALWINES_SPAN("compile_query_nfas");
    CompiledNfas nfas;
    nfas.path = nfa::Nfa::compile(query.path);
    const auto header_nfa = nfa::Nfa::compile(valid_header_regex(network.labels));
    nfas.initial_header =
        nfa::Nfa::intersection(nfa::Nfa::compile(query.initial_header), header_nfa);
    nfas.final_header =
        nfa::Nfa::intersection(nfa::Nfa::compile(query.final_header), header_nfa);
    return nfas;
}

Translation::Translation(const Network& network, const query::Query& query,
                         const TranslationOptions& options)
    : _network(&network), _query(&query), _options(options) {
    AALWINES_SPAN("translate");
    if (options.nfas != nullptr) {
        _nfa_b = options.nfas->path;
        _nfa_a = options.nfas->initial_header;
        _nfa_c = options.nfas->final_header;
    } else {
        auto nfas = compile_query_nfas(network, query);
        _nfa_b = std::move(nfas.path);
        _nfa_a = std::move(nfas.initial_header);
        _nfa_c = std::move(nfas.final_header);
    }
    _failure_slots = _options.approximation == Approximation::Under
                         ? static_cast<std::uint32_t>(query.max_failures) + 1
                         : 1;
    if (_options.approximation == Approximation::Exact && _options.failed_links == nullptr)
        throw model_error("exact translation requires a concrete failure set");

    _pda = std::make_unique<pda::Pda>(static_cast<pda::Symbol>(network.labels.size()));
    for (Label label = 0; label < network.labels.size(); ++label)
        _pda->set_symbol_class(label, class_id(network.labels.type_of(label)));

    build_control_states();
    build_move_index();
    if (_options.lazy) {
        _lazy = true;
        build_lazy_index();
        // The bucketed-worklist decision is made before any rule exists, so
        // declare up front whether every step weight will be scalar: the
        // weight vector's arity is fixed by the expression (≤ 1 component ⇒
        // scalar, matching what the eager translation would report).
        const bool scalar_weights =
            _options.weights == nullptr || _options.weights->size() <= 1;
        _pda->set_rule_provider(this, scalar_weights);
    } else {
        build_rules();
        _total_rules = _pda->rule_count();
        telemetry::count(telemetry::Counter::pda_rules_emitted, _pda->rule_count());
    }
    telemetry::count(telemetry::Counter::pda_states_interned, _pda->state_count());
    telemetry::count(telemetry::Counter::pda_rules_total, _total_rules);
}

pda::StateId Translation::control_state(LinkId link, std::uint32_t nfa_state,
                                        std::uint32_t failures) const {
    const auto n_links = static_cast<std::uint32_t>(_network->topology.link_count());
    const auto n_q = static_cast<std::uint32_t>(_nfa_b.size());
    AALWINES_ASSERT(link < n_links && nfa_state < n_q && failures < _failure_slots,
                    "control state components out of range");
    return (failures * n_q + nfa_state) * n_links + link;
}

void Translation::build_control_states() {
    const auto n_links = _network->topology.link_count();
    const auto n_control = _failure_slots * _nfa_b.size() * n_links;
    _pda->reserve_states(n_control);
    _control_info.reserve(n_control);
    for (std::uint32_t f = 0; f < _failure_slots; ++f) {
        for (std::uint32_t q = 0; q < _nfa_b.size(); ++q) {
            for (std::uint32_t e = 0; e < n_links; ++e) {
                const auto state = _pda->add_state();
                AALWINES_ASSERT(state == control_state(e, q, f),
                                "control state numbering out of sync");
                (void)state;
                _control_info.push_back({static_cast<LinkId>(e), q, f, false});
                if (_nfa_b.states()[q].accepting)
                    _accepting_states.push_back(control_state(e, q, f));
            }
        }
    }
    compute_initial_states();
}

void Translation::compute_initial_states() {
    // Initial configurations: the packet has just traversed any link e₁ the
    // path NFA can start with; no failures consumed yet.  Administratively
    // down links never start a trace (they are failed in every scenario).
    std::set<pda::StateId> initial;
    const auto domain = static_cast<nfa::Symbol>(_network->topology.link_count());
    for (const auto q0 : _nfa_b.initial()) {
        for (const auto& edge : _nfa_b.states()[q0].edges) {
            for (const auto link : edge.symbols.materialize(domain)) {
                if (!_network->topology.link_up(link)) continue;
                if (_options.approximation == Approximation::Exact &&
                    _options.failed_links->contains(link))
                    continue; // a trace cannot start on a failed link
                initial.insert(control_state(link, edge.target, 0));
            }
        }
    }
    _initial_states.assign(initial.begin(), initial.end());
}

bool Translation::initial_links_touch(const std::vector<bool>& dirty) const {
    const auto domain = static_cast<nfa::Symbol>(_network->topology.link_count());
    for (const auto q0 : _nfa_b.initial())
        for (const auto& edge : _nfa_b.states()[q0].edges)
            for (const auto link : edge.symbols.materialize(domain))
                if (link < dirty.size() && dirty[link]) return true;
    return false;
}

pda::Weight Translation::make_step_weight(const ForwardingRule& rule,
                                          std::uint64_t local_failures) const {
    if (_options.weights == nullptr || _options.weights->empty()) return pda::Weight::one();
    std::vector<std::uint64_t> components;
    components.reserve(_options.weights->size());
    for (const auto& expr : _options.weights->priorities)
        components.push_back(
            step_weight(*_network, expr, rule.out_link, rule.ops, local_failures));
    return pda::Weight::of(std::move(components));
}

pda::Weight Translation::make_initial_weight(LinkId first_link) const {
    if (_options.weights == nullptr || _options.weights->empty()) return pda::Weight::one();
    std::vector<std::uint64_t> components;
    components.reserve(_options.weights->size());
    for (const auto& expr : _options.weights->priorities)
        components.push_back(initial_weight(*_network, expr, first_link));
    return pda::Weight::of(std::move(components));
}

void Translation::build_move_index() {
    // Invert the path NFA once: the (q --link--> q') moves grouped by link,
    // in the same (q, edge) order the per-rule scan used to visit them.
    const auto n_links = _network->topology.link_count();
    _moves_by_link.assign(n_links, {});
    const auto domain = static_cast<nfa::Symbol>(n_links);
    for (std::uint32_t q = 0; q < _nfa_b.size(); ++q)
        for (const auto& edge : _nfa_b.states()[q].edges)
            for (const auto link : edge.symbols.materialize(domain))
                _moves_by_link[link].emplace_back(q, edge.target);
}

/// Counting sink for walk_chain: tallies the rules and interior states a
/// chain would create without touching the PDA.  Must mirror EmitSink's
/// control flow exactly — the lazy interior pool is sized from these counts.
struct Translation::CountSink {
    std::size_t rules = 0;
    std::size_t interiors = 0;
    void step(std::size_t /*index*/, bool last) {
        if (!last) ++interiors;
    }
    void rule(pda::PreSpec /*pre*/, pda::Rule::OpKind /*op*/, pda::Symbol /*l1*/,
              pda::Symbol /*l2*/) {
        ++rules;
    }
};

/// Emitting sink for walk_chain: allocates interior states (from the lazy
/// pool or by growing the PDA) and adds the rules.  The step weight and
/// trace tag ride on the first rule of the chain only.
struct Translation::EmitSink {
    Translation& t;
    pda::StateId from;
    pda::StateId target;
    pda::Weight weight;
    std::uint32_t tag;
    pda::StateId to = 0;
    std::size_t index = 0;

    void step(std::size_t i, bool last) {
        index = i;
        if (i > 0) from = to;
        to = last ? target : t.new_chain_state();
    }
    void rule(pda::PreSpec pre, pda::Rule::OpKind op, pda::Symbol l1, pda::Symbol l2) {
        t._pda->add_rule({from, to, pre, op, l1, l2,
                          index == 0 ? weight : pda::Weight::one(),
                          index == 0 ? tag : UINT32_MAX});
    }
};

template <typename Sink>
void Translation::walk_chain(Label top, const std::vector<Op>& ops, Sink& sink) const {
    const auto& labels = _network->labels;

    // Pre-check the statically-known prefix so we do not emit half a chain.
    {
        TopDescriptor d = TopDescriptor::of(top);
        for (const auto& op : ops) {
            if (!d.is_known()) break; // runtime class branching takes over
            if (!op_applicable(labels, d.known, op)) return; // chain can never fire
            switch (op.kind) {
                case Op::Kind::Swap: d = TopDescriptor::of(op.label); break;
                case Op::Kind::Push: d = TopDescriptor::of(op.label); break;
                case Op::Kind::Pop: d = below_of(labels.type_of(d.known)); break;
            }
        }
    }

    if (ops.empty()) {
        // Plain forwarding: keep the top label, move to the target state.
        sink.step(0, /*last=*/true);
        sink.rule(pda::PreSpec::concrete(top), pda::Rule::OpKind::Swap, top,
                  pda::k_no_symbol);
        return;
    }

    TopDescriptor desc = TopDescriptor::of(top);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto& op = ops[i];
        // The interior state (when not last) is allocated before the
        // applicability check, matching the historical emission order —
        // chains that die mid-walk still consume their interiors, and the
        // counting pass must agree on that.
        sink.step(i, i + 1 == ops.size());

        if (desc.is_known()) {
            const Label s = desc.known;
            if (!op_applicable(labels, s, op)) return; // dead chain (unknown-path)
            switch (op.kind) {
                case Op::Kind::Swap:
                    sink.rule(pda::PreSpec::concrete(s), pda::Rule::OpKind::Swap, op.label,
                              pda::k_no_symbol);
                    desc = TopDescriptor::of(op.label);
                    break;
                case Op::Kind::Push:
                    sink.rule(pda::PreSpec::concrete(s), pda::Rule::OpKind::Push, op.label,
                              s);
                    desc = TopDescriptor::of(op.label);
                    break;
                case Op::Kind::Pop:
                    sink.rule(pda::PreSpec::concrete(s), pda::Rule::OpKind::Pop,
                              pda::k_no_symbol, pda::k_no_symbol);
                    desc = below_of(labels.type_of(s));
                    break;
            }
        } else {
            // Unknown top: emit one class-guarded rule per possible stratum
            // on which the operation is defined.
            TopDescriptor next_desc; // union over branches
            bool emitted = false;
            const LabelType strata[] = {LabelType::Mpls, LabelType::MplsBos, LabelType::Ip};
            const bool allowed[] = {desc.mpls, desc.bos, desc.ip};
            for (int b = 0; b < 3; ++b) {
                if (!allowed[b]) continue;
                const auto stratum = strata[b];
                // A representative check: op applicability depends only on
                // the stratum of the top symbol.
                bool applicable = false;
                switch (op.kind) {
                    case Op::Kind::Swap:
                        applicable = labels.type_of(op.label) == stratum;
                        break;
                    case Op::Kind::Pop:
                        applicable = stratum != LabelType::Ip;
                        break;
                    case Op::Kind::Push: {
                        const auto pushed = labels.type_of(op.label);
                        applicable = (pushed == LabelType::Mpls &&
                                      stratum != LabelType::Ip) ||
                                     (pushed == LabelType::MplsBos &&
                                      stratum == LabelType::Ip);
                        break;
                    }
                }
                if (!applicable) continue;
                emitted = true;
                const auto pre = pda::PreSpec::of_class(class_id(stratum));
                switch (op.kind) {
                    case Op::Kind::Swap:
                        sink.rule(pre, pda::Rule::OpKind::Swap, op.label, pda::k_no_symbol);
                        next_desc = TopDescriptor::of(op.label);
                        break;
                    case Op::Kind::Push:
                        sink.rule(pre, pda::Rule::OpKind::Push, op.label,
                                  pda::k_same_symbol);
                        next_desc = TopDescriptor::of(op.label);
                        break;
                    case Op::Kind::Pop: {
                        sink.rule(pre, pda::Rule::OpKind::Pop, pda::k_no_symbol,
                                  pda::k_no_symbol);
                        const auto branch_below = below_of(stratum);
                        next_desc.mpls = next_desc.mpls || branch_below.mpls;
                        next_desc.bos = next_desc.bos || branch_below.bos;
                        next_desc.ip = next_desc.ip || branch_below.ip;
                        next_desc.known = k_invalid_label;
                        break;
                    }
                }
            }
            if (!emitted) return; // no stratum admits this op: dead chain
            desc = next_desc;
        }
    }
}

pda::StateId Translation::new_chain_state() {
    if (_lazy) {
        // Saturation has already handed out P-automaton helper ids above
        // state_count(), so interiors must come from the pre-allocated pool
        // ranges (one per construction/rebase), consumed in order.
        while (_pool_cursor < _pools.size() &&
               _pools[_pool_cursor].first == _pools[_pool_cursor].second)
            ++_pool_cursor;
        AALWINES_ASSERT(_pool_cursor < _pools.size(), "chain-interior pool exhausted");
        const auto state = _pools[_pool_cursor].first++;
        _pda->mark_materialized(state); // interiors have no rules of their own
        return state;
    }
    const auto state = _pda->add_state();
    _control_info.push_back({k_invalid_id, 0, 0, true});
    return state;
}

void Translation::build_rules() {
    // Upper-bound the rule count (ignores failure-budget pruning and dead
    // chains) so the rule vector and its match indexes allocate once.
    std::size_t estimated_rules = 0;
    _network->routing.for_each([&](LinkId, Label, const RoutingEntry& groups) {
        for (const auto& group : groups)
            for (const auto& rule : group)
                estimated_rules += _moves_by_link[rule.out_link].size() *
                                   std::max<std::size_t>(rule.ops.size(), 1);
    });
    _pda->reserve_rules(estimated_rules * _failure_slots);

    _network->routing.for_each([this](LinkId in_link, Label label, const RoutingEntry& groups) {
        add_entry_rules(in_link, label, groups);
    });
}

void Translation::build_entry_index() {
    const auto n_links = _network->topology.link_count();
    _links_into.clear();
    _entries_by_link.assign(n_links, {});
    _network->routing.for_each([&](LinkId in_link, Label label, const RoutingEntry& groups) {
        _entries_by_link[in_link].emplace_back(label, &groups);
    });
}

void Translation::count_link(LinkId in_link, LinkLoad& load) const {
    const auto k = _query->max_failures;
    for (const auto& [label, entry] : _entries_by_link[in_link]) {
        for_entry_rules(in_link, *entry,
                        [&](const ForwardingRule& rule, std::uint64_t local_failures) {
            // One rule-free chain walk per (entry, forwarding rule): the
            // chain's shape depends only on (top label, ops), so its counts
            // multiply across the path-NFA moves and failure slots.
            CountSink counts;
            walk_chain(label, rule.ops, counts);
            std::size_t slots = 1;
            if (_options.approximation == Approximation::Under)
                slots = static_cast<std::size_t>(k - local_failures) + 1;
            const auto copies = _moves_by_link[rule.out_link].size() * slots;
            load.rules += counts.rules * copies;
            load.interiors += counts.interiors * copies;
        });
    }
}

void Translation::build_lazy_index() {
    AALWINES_SPAN("build_lazy_index");
    build_entry_index();
    const auto n_links = _network->topology.link_count();
    _link_load.assign(n_links, {});
    std::size_t total_rules = 0;
    std::size_t total_interiors = 0;
    for (LinkId l = 0; l < n_links; ++l) {
        count_link(l, _link_load[l]);
        total_rules += _link_load[l].rules;
        total_interiors += _link_load[l].interiors;
    }
    _total_rules = total_rules;
    // Pre-allocate the chain-interior pool: materialization must never add
    // PDA states (the P-automaton's helper states share the id space), so
    // every interior an eager build would create exists up front.  The
    // counting pass is exact, which the equivalence tests pin down by
    // asserting the pool is fully consumed after materialize_all().
    const auto begin = static_cast<pda::StateId>(_pda->state_count());
    _pda->reserve_states(_pda->state_count() + total_interiors);
    _control_info.reserve(_control_info.size() + total_interiors);
    for (std::size_t i = 0; i < total_interiors; ++i) {
        _pda->add_state();
        _control_info.push_back({k_invalid_id, 0, 0, true});
    }
    _pools.assign(1, {begin, static_cast<pda::StateId>(_pda->state_count())});
    _pool_cursor = 0;
}

template <typename RuleFn>
void Translation::for_entry_rules(LinkId in_link, const RoutingEntry& groups,
                                  RuleFn&& fn) const {
    // Administratively-down links are failed for free in every scenario:
    // packets never arrive on one, rules never forward over one, and a
    // fully-down group is skipped without charging the failure budget.
    const auto& topology = _network->topology;
    if (!topology.link_up(in_link)) return;
    if (_options.approximation == Approximation::Exact) {
        const auto& failed = *_options.failed_links;
        if (failed.contains(in_link)) return; // packets never arrive here
        // Definition 4, exactly: the first TE group with an active link
        // forwards; higher-priority groups are fully failed (down links for
        // free, up links charged through the scenario's failure set F).
        std::set<LinkId> higher_priority_links;
        for (const auto& group : groups) {
            std::vector<const ForwardingRule*> active;
            for (const auto& rule : group)
                if (!failed.contains(rule.out_link) && topology.link_up(rule.out_link))
                    active.push_back(&rule);
            if (active.empty()) {
                for (const auto& rule : group)
                    if (topology.link_up(rule.out_link))
                        higher_priority_links.insert(rule.out_link);
                continue;
            }
            const auto local_failures =
                static_cast<std::uint64_t>(higher_priority_links.size());
            for (const auto* rule : active) fn(*rule, local_failures);
            return; // only the first active group forwards
        }
        return;
    }
    const auto k = _query->max_failures;
    std::set<LinkId> higher_priority_links;
    for (const auto& group : groups) {
        const auto local_failures = static_cast<std::uint64_t>(higher_priority_links.size());
        if (local_failures <= k)
            for (const auto& rule : group)
                if (topology.link_up(rule.out_link)) fn(rule, local_failures);
        for (const auto& rule : group)
            if (topology.link_up(rule.out_link))
                higher_priority_links.insert(rule.out_link);
    }
}

void Translation::add_entry_rules(LinkId in_link, Label label, const RoutingEntry& groups,
                                  std::uint32_t only_q, std::uint32_t only_f) {
    const auto k = _query->max_failures;
    for_entry_rules(in_link, groups,
                    [&](const ForwardingRule& rule, std::uint64_t local_failures) {
        // A rule fires for every path-NFA move that consumes its out-link,
        // from every (in_link, q [, f]) control state — or just the
        // (only_q, only_f) slice when one state is materialized on demand.
        for (const auto& [q, q_next] : _moves_by_link[rule.out_link]) {
            if (only_q != k_any && q != only_q) continue;
            for (std::uint32_t f = 0; f < _failure_slots; ++f) {
                if (only_f != k_any && f != only_f) continue;
                std::uint32_t f_next = f;
                if (_options.approximation == Approximation::Under) {
                    if (f + local_failures > k) continue;
                    f_next = f + static_cast<std::uint32_t>(local_failures);
                }
                const auto from = control_state(in_link, q, f);
                const auto to = control_state(rule.out_link, q_next, f_next);
                const auto tag = static_cast<std::uint32_t>(_steps.size());
                _steps.push_back(
                    {rule.out_link, static_cast<std::uint32_t>(local_failures)});
                add_chain(from, label, rule, to,
                          make_step_weight(rule, local_failures), tag);
            }
        }
    });
}

void Translation::materialize_state(pda::Pda& pda, pda::StateId state) {
    AALWINES_ASSERT(&pda == _pda.get(), "provider bound to a different PDA");
    (void)pda;
    const auto& info = _control_info[state];
    if (info.chain) return; // interiors were emitted with their owning chain
    for (const auto& [label, entry] : _entries_by_link[info.link])
        add_entry_rules(info.link, label, *entry, info.nfa_state, info.failures);
}

void Translation::add_chain(pda::StateId from, Label top, const ForwardingRule& rule,
                            pda::StateId target, pda::Weight weight, std::uint32_t tag) {
    EmitSink sink{*this, from, target, std::move(weight), tag};
    walk_chain(top, rule.ops, sink);
}

std::vector<char> Translation::affected_links(
    const std::vector<bool>& dirty, const std::vector<bool>& behavior_dirty) const {
    const auto n_links = _network->topology.link_count();
    const auto dirty_at = [](const std::vector<bool>& bits, LinkId l) {
        return l < bits.size() && bits[l];
    };
    std::vector<char> affected(n_links, 0);
    // The into-scan is only needed when some out-link *behavior* changed;
    // the common delta (a routing-entry edit) leaves behavior_dirty empty
    // and the affected set is just the dirty set.
    const bool scan_out_links =
        std::find(behavior_dirty.begin(), behavior_dirty.end(), true) !=
        behavior_dirty.end();
    for (LinkId l = 0; l < n_links; ++l)
        if (dirty_at(dirty, l)) affected[l] = 1;
    if (!scan_out_links) return affected;
    if (_links_into.empty()) {
        // Invert the out-link relation once; later queries are O(|dirty| +
        // |result|) instead of a full table scan per call.  The index stays
        // valid until a rebase replaces an affected entry list.
        _links_into.assign(n_links, {});
        for (LinkId l = 0; l < n_links; ++l) {
            for (const auto& [label, entry] : _entries_by_link[l]) {
                (void)label;
                for (const auto& group : *entry)
                    for (const auto& rule : group)
                        _links_into[rule.out_link].push_back(l);
            }
        }
        for (auto& into : _links_into) {
            std::sort(into.begin(), into.end());
            into.erase(std::unique(into.begin(), into.end()), into.end());
        }
    }
    for (LinkId out = 0; out < n_links; ++out)
        if (dirty_at(behavior_dirty, out))
            for (const auto l : _links_into[out]) affected[l] = 1;
    return affected;
}

bool Translation::footprint_touches(const std::vector<bool>& dirty,
                                    const std::vector<bool>& behavior_dirty) const {
    AALWINES_ASSERT(_lazy, "footprint queries need a demand-driven translation");
    const auto affected = affected_links(dirty, behavior_dirty);
    const auto n_control = _failure_slots * _nfa_b.size() * _network->topology.link_count();
    for (pda::StateId s = 0; s < n_control; ++s)
        if (_pda->is_materialized(s) && affected[_control_info[s].link]) return true;
    return false;
}

void Translation::add_to_footprint(LinkFootprint& fp) const {
    AALWINES_ASSERT(_lazy, "footprint snapshots need a demand-driven translation");
    const auto n_links = _network->topology.link_count();
    if (fp.materialized.size() < n_links) fp.materialized.resize(n_links, false);
    if (fp.out_links.size() < n_links) fp.out_links.resize(n_links, false);
    if (fp.initial.size() < n_links) fp.initial.resize(n_links, false);
    const auto n_control = _failure_slots * _nfa_b.size() * n_links;
    for (pda::StateId s = 0; s < n_control; ++s)
        if (_pda->is_materialized(s)) fp.materialized[_control_info[s].link] = true;
    // Only a materialized link's rules can be invalidated by an out-link
    // flip (the affected_links into-scan restricted to where it matters).
    for (LinkId l = 0; l < n_links; ++l) {
        if (!fp.materialized[l]) continue;
        for (const auto& [label, entry] : _entries_by_link[l]) {
            (void)label;
            for (const auto& group : *entry)
                for (const auto& rule : group) fp.out_links[rule.out_link] = true;
        }
    }
    const auto domain = static_cast<nfa::Symbol>(n_links);
    for (const auto q0 : _nfa_b.initial())
        for (const auto& edge : _nfa_b.states()[q0].edges)
            for (const auto link : edge.symbols.materialize(domain))
                fp.initial[link] = true;
}

void Translation::rebase(const Network& network, const std::vector<bool>& dirty,
                         const std::vector<bool>& behavior_dirty) {
    AALWINES_SPAN("rebase");
    AALWINES_ASSERT(_lazy, "rebase needs a demand-driven translation");
    AALWINES_ASSERT(network.topology.link_count() == _network->topology.link_count(),
                    "rebase cannot change the link set");
    AALWINES_ASSERT(network.labels.size() == _network->labels.size(),
                    "rebase cannot mint labels (cold rebuild required)");

    // The affected set can be computed against either table view: for an
    // unaffected link both generations hold identical entries.  Use the old
    // index before any of its RoutingEntry pointers can dangle.
    const auto affected = affected_links(dirty, behavior_dirty);
    const auto n_control =
        _failure_slots * _nfa_b.size() * _network->topology.link_count();
    std::vector<pda::StateId> heads;
    for (pda::StateId s = 0; s < n_control; ++s)
        if (_pda->is_materialized(s) && affected[_control_info[s].link])
            heads.push_back(s);

    _network = &network;
    // Re-bucket only the affected links against the patched table.  An
    // unaffected link's bucket stays valid verbatim: entries are shared_ptr-
    // shared across copy-on-write generations, so the new table holds the
    // very objects the old pointers reference (and every generation in the
    // chain keeps them alive).  The into-index survives unless an affected
    // bucket actually changed — a pure link-state flip never replaces one.
    bool entries_changed = false;
    for (LinkId l = 0; l < affected.size(); ++l) {
        if (!affected[l]) continue;
        std::vector<std::pair<Label, const RoutingEntry*>> fresh;
        _network->routing.for_each_of(l, [&](Label label, const RoutingEntry& groups) {
            fresh.emplace_back(label, &groups);
        });
        if (fresh != _entries_by_link[l]) {
            entries_changed = true;
            _entries_by_link[l] = std::move(fresh);
        }
    }
    if (entries_changed) _links_into.clear();

    _pda->invalidate_states(
        heads, [this](pda::StateId s) { return _control_info[s].chain; });

    // Recount the affected links against the new table; adjust the
    // eager-equivalent total and grow the interior pool by their full new
    // contribution (see the telescoping argument at _pools).
    std::size_t new_interiors = 0;
    for (LinkId l = 0; l < affected.size(); ++l) {
        if (!affected[l]) continue;
        LinkLoad load;
        count_link(l, load);
        _total_rules -= _link_load[l].rules;
        _total_rules += load.rules;
        new_interiors += load.interiors;
        _link_load[l] = load;
    }
    if (new_interiors > 0) {
        const auto begin = static_cast<pda::StateId>(_pda->state_count());
        _pda->reserve_states(_pda->state_count() + new_interiors);
        _control_info.reserve(_control_info.size() + new_interiors);
        for (std::size_t i = 0; i < new_interiors; ++i) {
            _pda->add_state();
            _control_info.push_back({k_invalid_id, 0, 0, true});
        }
        _pools.emplace_back(begin, static_cast<pda::StateId>(_pda->state_count()));
    }

    compute_initial_states();
    _reduced = false; // refresh the (lazy no-op) reduction stats next verify
}

void Translation::attach_header_nfa(pda::PAutomaton& aut, const nfa::Nfa& header_nfa,
                                    const std::vector<pda::StateId>& sources,
                                    bool weighted_entry, bool concrete_edges) const {
    const auto domain = static_cast<nfa::Symbol>(_network->labels.size());
    auto add_edge = [&](pda::StateId from, const nfa::SymbolSet& symbols,
                        pda::StateId to, const pda::Weight& weight) {
        if (!concrete_edges) {
            aut.add_transition(from, pda::EdgeLabel::of_set(symbols), to, weight, {});
            return;
        }
        for (const auto symbol : symbols.materialize(domain))
            aut.add_transition(from, pda::EdgeLabel::of(symbol), to, weight, {});
    };

    std::vector<pda::StateId> copy(header_nfa.size());
    for (std::size_t i = 0; i < header_nfa.size(); ++i) {
        copy[i] = aut.add_state();
        if (header_nfa.states()[i].accepting) aut.set_final(copy[i]);
    }
    for (std::size_t i = 0; i < header_nfa.size(); ++i)
        for (const auto& edge : header_nfa.states()[i].edges)
            add_edge(copy[i], edge.symbols, copy[edge.target], pda::Weight::one());
    for (const auto source : sources) {
        const auto entry_weight = weighted_entry
                                      ? make_initial_weight(_control_info[source].link)
                                      : pda::Weight::one();
        for (const auto q0 : header_nfa.initial())
            for (const auto& edge : header_nfa.states()[q0].edges)
                add_edge(source, edge.symbols, copy[edge.target], entry_weight);
    }
}

pda::PAutomaton Translation::make_initial_automaton() const {
    return make_initial_automaton(*_pda);
}

pda::PAutomaton Translation::make_final_automaton() const {
    return make_final_automaton(*_pda);
}

pda::PAutomaton Translation::make_initial_automaton(const pda::Pda& backend,
                                                    bool concrete_edges) const {
    pda::PAutomaton aut(backend);
    attach_header_nfa(aut, _nfa_a, _initial_states, /*weighted_entry=*/true,
                      concrete_edges);
    return aut;
}

pda::PAutomaton Translation::make_final_automaton(const pda::Pda& backend,
                                                  bool concrete_edges) const {
    pda::PAutomaton aut(backend);
    attach_header_nfa(aut, _nfa_c, _accepting_states, /*weighted_entry=*/false,
                      concrete_edges);
    return aut;
}

pda::ReductionStats Translation::reduce(int level) {
    if (_reduced) return _reduce_stats; // shared translations reduce once
    if (_lazy) {
        // Demand-driven construction subsumes the reduction pass: the match
        // index filters rule application on the exact reachable tops per
        // state, so the rules the abstract pass would prune can never fire.
        // Running it would force full materialization, defeating laziness.
        _reduce_stats.rules_before = _total_rules;
        _reduce_stats.rules_after = _total_rules;
        _reduced = true;
        return _reduce_stats;
    }
    AALWINES_SPAN("reduce");
    // Seed the analysis with the stack languages of the initial configs.
    SymbolSet top_set, second_set, deep_set;
    for (const auto q0 : _nfa_a.initial()) {
        for (const auto& edge : _nfa_a.states()[q0].edges) {
            top_set = SymbolSet::set_union(top_set, edge.symbols);
            for (const auto& second_edge : _nfa_a.states()[edge.target].edges)
                second_set = SymbolSet::set_union(second_set, second_edge.symbols);
        }
    }
    for (const auto& state : _nfa_a.states())
        for (const auto& edge : state.edges)
            deep_set = SymbolSet::set_union(deep_set, edge.symbols);

    std::vector<pda::TosSeed> seeds;
    seeds.reserve(_initial_states.size());
    for (const auto state : _initial_states) seeds.push_back({state, top_set, second_set});
    _reduce_stats = pda::reduce(*_pda, seeds, deep_set, level);
    _reduced = true;
    return _reduce_stats;
}

TranslationCache::TranslationCache(const Network& network, const query::Query& query,
                                   const WeightExpr* weights, bool lazy)
    : _network(&network), _query(&query), _weights(weights), _lazy(lazy),
      _nfas(compile_query_nfas(network, query)) {}

TranslationCache::TranslationCache(const Network& network, const query::Query& query,
                                   const WeightExpr* weights, bool lazy,
                                   std::shared_ptr<const CompiledNfas> nfas)
    : _network(&network), _query(&query), _weights(weights), _lazy(lazy),
      _shared_nfas(std::move(nfas)) {
    AALWINES_ASSERT(_shared_nfas != nullptr, "shared-NFA cache without NFAs");
}

void TranslationCache::rebase(const Network& network, const std::vector<bool>& dirty,
                              const std::vector<bool>& behavior_dirty) {
    _network = &network;
    if (_over) _over->rebase(network, dirty, behavior_dirty);
    if (_under) _under->rebase(network, dirty, behavior_dirty); // distinct from _over by construction
}

Translation& TranslationCache::translation(Approximation approximation) {
    AALWINES_ASSERT(approximation != Approximation::Exact,
                    "exact scenarios are not cacheable (each failure set differs)");
    // With a zero failure budget both approximations have a single failure
    // slot and every entry's local-failure guard behaves identically, so the
    // emitted PDAs coincide rule for rule: reuse the Over translation.
    if (approximation == Approximation::Under && _query->max_failures == 0)
        approximation = Approximation::Over;
    auto& slot = approximation == Approximation::Under ? _under : _over;
    if (!slot) {
        TranslationOptions topts;
        topts.approximation = approximation;
        topts.weights = _weights;
        topts.nfas = &nfas();
        topts.lazy = _lazy;
        slot = std::make_unique<Translation>(*_network, *_query, topts);
    }
    return *slot;
}

std::optional<Trace> Translation::witness_to_trace(const pda::PdaWitness& witness) const {
    return witness_to_trace(witness, *_pda);
}

std::optional<Trace> Translation::witness_to_trace(const pda::PdaWitness& witness,
                                                   const pda::Pda& backend) const {
    AALWINES_SPAN("witness_to_trace");
    const auto replay = pda::replay_witness(backend, witness);
    if (!replay) return std::nullopt;
    const auto& configs = *replay;

    auto header_of = [](const std::vector<pda::Symbol>& top_first) {
        Header header(top_first.rbegin(), top_first.rend());
        return header;
    };

    if (witness.initial_state >= _control_info.size() ||
        _control_info[witness.initial_state].chain)
        return std::nullopt;

    Trace trace;
    trace.entries.push_back(
        {_control_info[witness.initial_state].link, header_of(configs.front().second)});

    // Chain boundaries: the first rule of each forwarding chain carries a
    // tag; the chain's effect is complete right before the next tagged rule.
    std::vector<std::pair<std::size_t, const StepInfo*>> forwards;
    for (std::size_t i = 0; i < witness.rules.size(); ++i) {
        const auto tag = backend.rule(witness.rules[i]).tag;
        if (tag != UINT32_MAX) forwards.emplace_back(i, &_steps[tag]);
    }
    for (std::size_t i = 0; i < forwards.size(); ++i) {
        const std::size_t end =
            i + 1 < forwards.size() ? forwards[i + 1].first : witness.rules.size();
        trace.entries.push_back({forwards[i].second->out_link, header_of(configs[end].second)});
    }
    telemetry::count(telemetry::Counter::traces_reconstructed);
    return trace;
}

} // namespace aalwines::verify
