#include <chrono>

#include "telemetry/telemetry.hpp"
#include "verify/engine.hpp"
#include "verify/moped_format.hpp"
#include "verify/translation.hpp"

namespace aalwines::verify {

namespace {

using Clock = std::chrono::steady_clock;

struct MopedPhaseOutcome {
    bool satisfied = false;
    bool truncated = false;
    std::optional<Trace> trace;
    Feasibility feasibility;
    PhaseStats stats;
};

/// One pre*-based phase modelling the Moped pipeline P-Rex used: the PDA in
/// the *direct* encoding — no top-of-stack reduction, every symbolic class
/// rule expanded over the concrete label alphabet, concrete automaton edges
/// — is serialised to the Moped text format, parsed back, and solved by
/// classical full pre* saturation before the membership check.  This is
/// exactly the configuration the paper's novel translation (symbolic rules
/// + reductions + demand-driven post*) is measured against.
MopedPhaseOutcome run_pre_star_phase(const Network& network, const query::Query& query,
                                     Approximation approximation,
                                     const VerifyOptions& options, TranslationCache& cache,
                                     pda::SolverWorkspace& workspace) {
    AALWINES_SPAN(approximation == Approximation::Under ? "pre_star_phase(under)"
                                                        : "pre_star_phase(over)");
    MopedPhaseOutcome outcome;
    const auto start = Clock::now();
    outcome.stats.ran = true;

    Translation& translation = cache.translation(approximation);
    outcome.stats.pda_rules_before_reduction = translation.rules_before_reduction();
    if (options.moped_reduction) translation.reduce(options.reduction_level);

    // The external-tool round trip, in the direct (fully concrete) encoding.
    // A lazy translation is fully materialized by expand_concrete — the
    // serialization needs every rule, so demand-driven construction buys
    // nothing here (hence TranslationMode::Auto resolves to eager).
    pda::Pda backend(0);
    {
        AALWINES_SPAN("moped_roundtrip");
        const auto expanded = translation.pda().expand_concrete();
        const auto document = write_moped_format(expanded);
        backend = parse_moped_format(document);
    }
    outcome.stats.pda_rules_expanded = backend.rule_count();
    outcome.stats.pda_states_expanded = backend.state_count();
    // Same semantics as the dual engine: the (optionally reduced) symbolic
    // translation PDA.  The concrete backend's size goes in `_expanded`.
    // Read after the round trip so a lazy translation is fully counted.
    outcome.stats.pda_rules = translation.pda().rule_count();
    outcome.stats.pda_states = translation.pda().state_count();
    outcome.stats.lazy_translation = translation.lazy();
    outcome.stats.pda_rules_total = translation.total_rules();
    outcome.stats.pda_rules_materialized = translation.pda().rule_count();
    outcome.stats.pda_states_materialized = translation.pda().materialized_state_count();

    auto automaton =
        translation.make_final_automaton(backend, /*concrete_edges=*/true);
    pda::SolverOptions solver_options;
    solver_options.max_iterations = options.max_iterations;
    solver_options.workspace = &workspace;
    solver_options.threads = options.solver_threads;
    const auto sat_stats = pda::pre_star(automaton, solver_options);
    absorb_solver_stats(outcome.stats, sat_stats);
    outcome.truncated = sat_stats.truncated;

    const auto accepted = pda::find_accepted(
        automaton, translation.initial_states(), translation.initial_header_nfa(),
        static_cast<pda::Symbol>(network.labels.size()), &workspace);
    if (!accepted) {
        outcome.stats.seconds = std::chrono::duration<double>(Clock::now() - start).count();
        return outcome;
    }
    outcome.satisfied = true;

    // Witness rule ids refer to the round-tripped backend PDA; expansion and
    // the format both preserve tags and control states, so the translation
    // can still rebuild the network trace.
    if (const auto witness = pda::unroll_pre_star(automaton, *accepted)) {
        if (auto trace = translation.witness_to_trace(*witness, backend)) {
            outcome.feasibility = check_feasibility(network, *trace, query.max_failures);
            outcome.trace = std::move(trace);
        }
    }
    outcome.stats.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return outcome;
}

} // namespace

VerifyResult moped_verify(const Network& network, const query::Query& query,
                          const VerifyOptions& options) {
    AALWINES_SPAN("moped_verify");
    const auto start = Clock::now();
    VerifyResult result;

    TranslationCache cache(network, query, /*weights=*/nullptr,
                           use_lazy_translation(options.translation, EngineKind::Moped));
    pda::SolverWorkspace workspace;

    auto over = run_pre_star_phase(network, query, Approximation::Over, options, cache,
                                   workspace);
    result.stats.over = over.stats;
    if (!over.satisfied) {
        result.answer = over.truncated ? Answer::Inconclusive : Answer::No;
        if (over.truncated) result.note = "moped: over-approximation truncated";
        result.stats.total_seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        return result;
    }
    if (over.trace && over.feasibility.feasible) {
        result.answer = Answer::Yes;
        if (options.build_trace) result.trace = std::move(over.trace);
        result.stats.total_seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        return result;
    }

    auto under = run_pre_star_phase(network, query, Approximation::Under, options, cache,
                                    workspace);
    result.stats.under = under.stats;
    if (under.satisfied && under.trace && under.feasibility.feasible) {
        result.answer = Answer::Yes;
        if (options.build_trace) result.trace = std::move(under.trace);
    } else {
        result.answer = Answer::Inconclusive;
        result.note = under.truncated ? "moped: under-approximation truncated"
                                      : "moped: no valid witness in either approximation";
    }
    result.stats.total_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return result;
}

} // namespace aalwines::verify
