#pragma once
// Parallel batch verification.  The paper's backend serves whole query
// files per network snapshot; queries are independent (the network is only
// read), so they distribute trivially across worker threads.

#include <cstddef>
#include <string>
#include <vector>

#include "verify/engine.hpp"

namespace aalwines::verify {

struct BatchItem {
    std::string query_text;
    VerifyResult result;
    std::string error; ///< non-empty when the query failed to parse/verify
};

/// Verify every query in `texts` against `network`, using up to `jobs`
/// worker threads (0 = hardware concurrency).  Results keep the input
/// order.  Per-query parse or verification errors are captured in the
/// item's `error` instead of aborting the batch.
[[nodiscard]] std::vector<BatchItem> verify_batch(const Network& network,
                                                  const std::vector<std::string>& texts,
                                                  const VerifyOptions& options = {},
                                                  std::size_t jobs = 0);

} // namespace aalwines::verify
