#include "xml/xml.hpp"

#include <cctype>
#include <charconv>

namespace aalwines::xml {

namespace {

class Parser {
public:
    explicit Parser(std::string_view input) : _in(input) {}

    Element parse_document() {
        skip_prolog();
        Element root = parse_element();
        skip_misc();
        if (!at_end())
            fail("trailing content after root element");
        return root;
    }

private:
    std::string_view _in;
    std::size_t _pos = 0;
    unsigned _line = 1;
    unsigned _col = 1;

    [[nodiscard]] bool at_end() const { return _pos >= _in.size(); }
    [[nodiscard]] char peek() const { return _in[_pos]; }
    [[nodiscard]] bool looking_at(std::string_view s) const {
        return _in.substr(_pos, s.size()) == s;
    }

    char advance() {
        const char c = _in[_pos++];
        if (c == '\n') {
            ++_line;
            _col = 1;
        } else {
            ++_col;
        }
        return c;
    }

    void advance_n(std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) advance();
    }

    [[noreturn]] void fail(const std::string& message) const {
        detail::fail_parse(message, {_line, _col});
    }

    void skip_ws() {
        while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
    }

    void expect(char c) {
        if (at_end() || peek() != c)
            fail(std::string("expected '") + c + "'");
        advance();
    }

    void skip_comment() {
        // precondition: looking_at("<!--")
        advance_n(4);
        while (!looking_at("-->")) {
            if (at_end()) fail("unterminated comment");
            advance();
        }
        advance_n(3);
    }

    void skip_pi() {
        // precondition: looking_at("<?")
        advance_n(2);
        while (!looking_at("?>")) {
            if (at_end()) fail("unterminated processing instruction");
            advance();
        }
        advance_n(2);
    }

    void skip_doctype() {
        // precondition: looking_at("<!DOCTYPE"); skip to matching '>'
        int depth = 0;
        while (!at_end()) {
            const char c = advance();
            if (c == '<') ++depth;
            if (c == '>') {
                if (depth == 0) return;
                --depth;
            }
        }
        fail("unterminated DOCTYPE");
    }

    void skip_prolog() {
        skip_misc();
    }

    void skip_misc() {
        for (;;) {
            skip_ws();
            if (looking_at("<?")) {
                skip_pi();
            } else if (looking_at("<!--")) {
                skip_comment();
            } else if (looking_at("<!DOCTYPE")) {
                advance_n(9);
                skip_doctype();
            } else {
                return;
            }
        }
    }

    [[nodiscard]] static bool is_name_start(char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    }

    [[nodiscard]] static bool is_name_char(char c) {
        return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
               c == '-' || c == '.';
    }

    std::string parse_name() {
        if (at_end() || !is_name_start(peek()))
            fail("expected a name");
        std::string name;
        while (!at_end() && is_name_char(peek()))
            name.push_back(advance());
        return name;
    }

    void append_entity(std::string& out) {
        // precondition: peek() == '&'
        advance();
        std::string ent;
        while (!at_end() && peek() != ';') {
            ent.push_back(advance());
            if (ent.size() > 10) fail("unterminated entity reference");
        }
        if (at_end()) fail("unterminated entity reference");
        advance(); // ';'
        if (ent == "lt") out.push_back('<');
        else if (ent == "gt") out.push_back('>');
        else if (ent == "amp") out.push_back('&');
        else if (ent == "quot") out.push_back('"');
        else if (ent == "apos") out.push_back('\'');
        else if (!ent.empty() && ent[0] == '#') {
            int base = 10;
            std::string_view digits(ent);
            digits.remove_prefix(1);
            if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
                base = 16;
                digits.remove_prefix(1);
            }
            unsigned code = 0;
            auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), code, base);
            if (ec != std::errc{} || ptr != digits.data() + digits.size())
                fail("invalid character reference &" + ent + ";");
            append_utf8(out, code);
        } else {
            fail("unknown entity &" + ent + ";");
        }
    }

    static void append_utf8(std::string& out, unsigned code) {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    std::string parse_attr_value() {
        if (at_end() || (peek() != '"' && peek() != '\''))
            fail("expected quoted attribute value");
        const char quote = advance();
        std::string value;
        while (!at_end() && peek() != quote) {
            if (peek() == '&') append_entity(value);
            else if (peek() == '<') fail("'<' not allowed in attribute value");
            else value.push_back(advance());
        }
        if (at_end()) fail("unterminated attribute value");
        advance(); // closing quote
        return value;
    }

    Element parse_element() {
        expect('<');
        Element element;
        element.name = parse_name();
        // attributes
        for (;;) {
            skip_ws();
            if (at_end()) fail("unterminated start tag");
            if (peek() == '>' || looking_at("/>")) break;
            std::string attr_name = parse_name();
            skip_ws();
            expect('=');
            skip_ws();
            element.attributes.emplace_back(std::move(attr_name), parse_attr_value());
        }
        if (looking_at("/>")) {
            advance_n(2);
            return element;
        }
        expect('>');
        parse_content(element);
        return element;
    }

    void parse_content(Element& element) {
        for (;;) {
            if (at_end()) fail("unterminated element <" + element.name + ">");
            if (looking_at("<![CDATA[")) {
                advance_n(9);
                while (!looking_at("]]>")) {
                    if (at_end()) fail("unterminated CDATA section");
                    element.text.push_back(advance());
                }
                advance_n(3);
            } else if (looking_at("<!--")) {
                skip_comment();
            } else if (looking_at("<?")) {
                skip_pi();
            } else if (looking_at("</")) {
                advance_n(2);
                std::string close = parse_name();
                if (close != element.name)
                    fail("mismatched close tag </" + close + "> for <" + element.name + ">");
                skip_ws();
                expect('>');
                return;
            } else if (peek() == '<') {
                element.children.push_back(parse_element());
            } else if (peek() == '&') {
                append_entity(element.text);
            } else {
                element.text.push_back(advance());
            }
        }
    }
};

} // namespace

std::optional<std::string_view> Element::attr(std::string_view attr_name) const {
    for (const auto& [name_, value] : attributes)
        if (name_ == attr_name) return std::string_view(value);
    return std::nullopt;
}

std::string_view Element::required_attr(std::string_view attr_name) const {
    if (auto value = attr(attr_name)) return *value;
    throw model_error("<" + name + "> is missing required attribute '" +
                      std::string(attr_name) + "'");
}

const Element* Element::first_child(std::string_view child_name) const {
    for (const auto& child : children)
        if (child.name == child_name) return &child;
    return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view child_name) const {
    std::vector<const Element*> out;
    for (const auto& child : children)
        if (child.name == child_name) out.push_back(&child);
    return out;
}

Element parse(std::string_view input) {
    return Parser(input).parse_document();
}

} // namespace aalwines::xml
