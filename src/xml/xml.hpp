#pragma once
// Minimal non-validating XML DOM used for the vendor-agnostic topo.xml /
// route.xml input formats (paper, Appendix A).
//
// Supported: elements, attributes (single- or double-quoted), character data,
// comments, CDATA sections, processing instructions (skipped), the five
// predefined entities plus decimal/hex character references.  Not supported
// (and not needed for the formats at hand): DTDs, namespaces-as-semantics.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/errors.hpp"

namespace aalwines::xml {

/// A single element node: name, attributes, child elements and the
/// concatenation of all its character data.
class Element {
public:
    std::string name;
    std::vector<std::pair<std::string, std::string>> attributes;
    std::vector<Element> children;
    std::string text; ///< concatenated character data, entity-decoded

    /// Value of attribute `attr_name`, if present.
    [[nodiscard]] std::optional<std::string_view> attr(std::string_view attr_name) const;

    /// Value of attribute `attr_name`; throws model_error when missing.
    [[nodiscard]] std::string_view required_attr(std::string_view attr_name) const;

    /// First child element named `child_name`, or nullptr.
    [[nodiscard]] const Element* first_child(std::string_view child_name) const;

    /// All child elements named `child_name`.
    [[nodiscard]] std::vector<const Element*> children_named(std::string_view child_name) const;
};

/// Parse a whole document and return its root element.
/// Throws parse_error (with line/column) on malformed input.
[[nodiscard]] Element parse(std::string_view input);

/// Serialisation options for `write`.
struct WriteOptions {
    bool pretty = true;   ///< newline + 2-space indentation per depth
    bool declaration = true; ///< emit `<?xml version="1.0"?>` header
};

/// Serialise `root` to a string.  Escapes text and attribute values.
[[nodiscard]] std::string write(const Element& root, WriteOptions options = {});

} // namespace aalwines::xml
