#include "xml/xml.hpp"

namespace aalwines::xml {

namespace {

void escape_into(std::string& out, std::string_view text, bool in_attribute) {
    for (const char c : text) {
        switch (c) {
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '&': out += "&amp;"; break;
            case '"':
                if (in_attribute) out += "&quot;";
                else out.push_back(c);
                break;
            default: out.push_back(c); break;
        }
    }
}

void write_element(std::string& out, const Element& element, const WriteOptions& options,
                   int depth) {
    const std::string indent = options.pretty ? std::string(2 * static_cast<std::size_t>(depth), ' ')
                                              : std::string();
    out += indent;
    out.push_back('<');
    out += element.name;
    for (const auto& [name, value] : element.attributes) {
        out.push_back(' ');
        out += name;
        out += "=\"";
        escape_into(out, value, true);
        out.push_back('"');
    }
    const bool has_text = !element.text.empty();
    if (element.children.empty() && !has_text) {
        out += "/>";
        if (options.pretty) out.push_back('\n');
        return;
    }
    out.push_back('>');
    if (has_text) escape_into(out, element.text, false);
    if (!element.children.empty()) {
        if (options.pretty) out.push_back('\n');
        for (const auto& child : element.children)
            write_element(out, child, options, depth + 1);
        out += indent;
    }
    out += "</";
    out += element.name;
    out.push_back('>');
    if (options.pretty) out.push_back('\n');
}

} // namespace

std::string write(const Element& root, WriteOptions options) {
    std::string out;
    if (options.declaration) {
        out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
        if (options.pretty) out.push_back('\n');
    }
    write_element(out, root, options, 0);
    return out;
}

} // namespace aalwines::xml
