#pragma once
// A compact JSON value type with parser and writer.
//
// Used for the router location files (paper, Appendix A.2) and for the CLI's
// machine-readable result output.  Supports the full JSON grammar; numbers
// are stored as double (plus an exact int64 fast path).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/errors.hpp"

namespace aalwines::json {

class Value;
using Array = std::vector<Value>;
/// std::map keeps object keys ordered, giving deterministic serialisation.
using Object = std::map<std::string, Value>;

class Value {
public:
    Value() : _data(nullptr) {}
    Value(std::nullptr_t) : _data(nullptr) {}
    Value(bool b) : _data(b) {}
    Value(std::int64_t i) : _data(i) {}
    Value(int i) : _data(static_cast<std::int64_t>(i)) {}
    Value(std::size_t u) : _data(static_cast<std::int64_t>(u)) {}
    Value(double d) : _data(d) {}
    Value(std::string s) : _data(std::move(s)) {}
    Value(const char* s) : _data(std::string(s)) {}
    Value(Array a) : _data(std::move(a)) {}
    Value(Object o) : _data(std::move(o)) {}

    [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(_data); }
    [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(_data); }
    [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(_data); }
    [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(_data); }
    [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
    [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(_data); }
    [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(_data); }
    [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(_data); }

    [[nodiscard]] bool as_bool() const { return std::get<bool>(_data); }
    [[nodiscard]] std::int64_t as_int() const;
    [[nodiscard]] double as_double() const;
    [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(_data); }
    [[nodiscard]] const Array& as_array() const { return std::get<Array>(_data); }
    [[nodiscard]] Array& as_array() { return std::get<Array>(_data); }
    [[nodiscard]] const Object& as_object() const { return std::get<Object>(_data); }
    [[nodiscard]] Object& as_object() { return std::get<Object>(_data); }

    /// Object member access; throws model_error when missing or not an object.
    [[nodiscard]] const Value& at(const std::string& key) const;
    /// Object member pointer, nullptr when absent.
    [[nodiscard]] const Value* find(const std::string& key) const;

    bool operator==(const Value& other) const = default;

private:
    std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> _data;
};

/// Parse a JSON document.  Throws parse_error with position on bad input.
[[nodiscard]] Value parse(std::string_view input);

/// Serialise; `indent` > 0 pretty-prints with that many spaces per level.
[[nodiscard]] std::string write(const Value& value, int indent = 0);

} // namespace aalwines::json
