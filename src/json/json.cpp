#include "json/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace aalwines::json {

std::int64_t Value::as_int() const {
    if (is_int()) return std::get<std::int64_t>(_data);
    return static_cast<std::int64_t>(std::get<double>(_data));
}

double Value::as_double() const {
    if (is_double()) return std::get<double>(_data);
    return static_cast<double>(std::get<std::int64_t>(_data));
}

const Value& Value::at(const std::string& key) const {
    if (!is_object()) throw model_error("JSON value is not an object (looking up '" + key + "')");
    const auto& object = as_object();
    auto it = object.find(key);
    if (it == object.end()) throw model_error("JSON object has no member '" + key + "'");
    return it->second;
}

const Value* Value::find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto& object = as_object();
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view input) : _in(input) {}

    Value parse_document() {
        Value value = parse_value();
        skip_ws();
        if (_pos != _in.size()) fail("trailing content after JSON value");
        return value;
    }

private:
    std::string_view _in;
    std::size_t _pos = 0;
    unsigned _line = 1;
    unsigned _col = 1;

    [[noreturn]] void fail(const std::string& message) const {
        detail::fail_parse(message, {_line, _col});
    }

    [[nodiscard]] bool at_end() const { return _pos >= _in.size(); }
    [[nodiscard]] char peek() const { return _in[_pos]; }

    char advance() {
        const char c = _in[_pos++];
        if (c == '\n') {
            ++_line;
            _col = 1;
        } else {
            ++_col;
        }
        return c;
    }

    void skip_ws() {
        while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r'))
            advance();
    }

    void expect(char c) {
        if (at_end() || peek() != c) fail(std::string("expected '") + c + "'");
        advance();
    }

    bool consume_literal(std::string_view literal) {
        if (_in.substr(_pos, literal.size()) != literal) return false;
        for (std::size_t i = 0; i < literal.size(); ++i) advance();
        return true;
    }

    Value parse_value() {
        skip_ws();
        if (at_end()) fail("unexpected end of input");
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Value(parse_string());
            case 't':
                if (consume_literal("true")) return Value(true);
                fail("invalid literal");
            case 'f':
                if (consume_literal("false")) return Value(false);
                fail("invalid literal");
            case 'n':
                if (consume_literal("null")) return Value(nullptr);
                fail("invalid literal");
            default: return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Object object;
        skip_ws();
        if (!at_end() && peek() == '}') {
            advance();
            return Value(std::move(object));
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            object.insert_or_assign(std::move(key), parse_value());
            skip_ws();
            if (at_end()) fail("unterminated object");
            if (peek() == ',') {
                advance();
                continue;
            }
            expect('}');
            return Value(std::move(object));
        }
    }

    Value parse_array() {
        expect('[');
        Array array;
        skip_ws();
        if (!at_end() && peek() == ']') {
            advance();
            return Value(std::move(array));
        }
        for (;;) {
            array.push_back(parse_value());
            skip_ws();
            if (at_end()) fail("unterminated array");
            if (peek() == ',') {
                advance();
                continue;
            }
            expect(']');
            return Value(std::move(array));
        }
    }

    std::string parse_string() {
        if (at_end() || peek() != '"') fail("expected string");
        advance();
        std::string out;
        for (;;) {
            if (at_end()) fail("unterminated string");
            const char c = advance();
            if (c == '"') return out;
            if (c == '\\') {
                if (at_end()) fail("unterminated escape");
                const char esc = advance();
                switch (esc) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    case 'n': out.push_back('\n'); break;
                    case 'r': out.push_back('\r'); break;
                    case 't': out.push_back('\t'); break;
                    case 'u': parse_unicode_escape(out); break;
                    default: fail("invalid escape sequence");
                }
            } else {
                out.push_back(c);
            }
        }
    }

    unsigned parse_hex4() {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            if (at_end()) fail("unterminated \\u escape");
            const char c = advance();
            code <<= 4;
            if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
            else fail("invalid \\u escape");
        }
        return code;
    }

    void parse_unicode_escape(std::string& out) {
        unsigned code = parse_hex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
            // surrogate pair
            if (_in.substr(_pos, 2) != "\\u") fail("unpaired surrogate");
            advance();
            advance();
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        }
        append_utf8(out, code);
    }

    static void append_utf8(std::string& out, unsigned code) {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    Value parse_number() {
        const std::size_t start = _pos;
        if (!at_end() && peek() == '-') advance();
        bool is_floating = false;
        while (!at_end()) {
            const char c = peek();
            if (std::isdigit(static_cast<unsigned char>(c))) {
                advance();
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
                is_floating = true;
                advance();
            } else {
                break;
            }
        }
        const std::string_view token = _in.substr(start, _pos - start);
        if (token.empty() || token == "-") fail("invalid number");
        if (!is_floating) {
            std::int64_t integer = 0;
            auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), integer);
            if (ec == std::errc{} && ptr == token.data() + token.size()) return Value(integer);
        }
        double value = 0;
        auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
        if (ec != std::errc{} || ptr != token.data() + token.size()) fail("invalid number");
        return Value(value);
    }
};

void write_value(std::string& out, const Value& value, int indent, int depth);

void write_string(std::string& out, const std::string& text) {
    out.push_back('"');
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    std::array<char, 8> buf{};
                    std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
                    out += buf.data();
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void write_newline_indent(std::string& out, int indent, int depth) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

void write_value(std::string& out, const Value& value, int indent, int depth) {
    if (value.is_null()) {
        out += "null";
    } else if (value.is_bool()) {
        out += value.as_bool() ? "true" : "false";
    } else if (value.is_int()) {
        out += std::to_string(value.as_int());
    } else if (value.is_double()) {
        const double d = value.as_double();
        if (std::isfinite(d)) {
            std::array<char, 32> buf{};
            auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
            out.append(buf.data(), ptr);
        } else {
            out += "null"; // JSON has no Inf/NaN
        }
    } else if (value.is_string()) {
        write_string(out, value.as_string());
    } else if (value.is_array()) {
        const auto& array = value.as_array();
        if (array.empty()) {
            out += "[]";
            return;
        }
        out.push_back('[');
        bool first = true;
        for (const auto& element : array) {
            if (!first) out.push_back(',');
            first = false;
            write_newline_indent(out, indent, depth + 1);
            write_value(out, element, indent, depth + 1);
        }
        write_newline_indent(out, indent, depth);
        out.push_back(']');
    } else {
        const auto& object = value.as_object();
        if (object.empty()) {
            out += "{}";
            return;
        }
        out.push_back('{');
        bool first = true;
        for (const auto& [key, member] : object) {
            if (!first) out.push_back(',');
            first = false;
            write_newline_indent(out, indent, depth + 1);
            write_string(out, key);
            out.push_back(':');
            if (indent > 0) out.push_back(' ');
            write_value(out, member, indent, depth + 1);
        }
        write_newline_indent(out, indent, depth);
        out.push_back('}');
    }
}

} // namespace

Value parse(std::string_view input) {
    return Parser(input).parse_document();
}

std::string write(const Value& value, int indent) {
    std::string out;
    write_value(out, value, indent, 0);
    return out;
}

} // namespace aalwines::json
