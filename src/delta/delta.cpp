#include "delta/delta.hpp"

#include <algorithm>

#include "util/errors.hpp"

namespace aalwines::delta {

namespace {

LabelType parse_label_type(const std::string& text) {
    if (text == "mpls") return LabelType::Mpls;
    if (text == "smpls") return LabelType::MplsBos;
    if (text == "ip") return LabelType::Ip;
    throw model_error("unknown label type '" + text + "' (expected mpls, smpls or ip)");
}

/// Read the (label, type) pair of `value`; `type` defaults to mpls, as in
/// the XML routing format.
DeltaOp::LabelRef parse_label_ref(const json::Value& value) {
    DeltaOp::LabelRef ref;
    ref.name = value.at("label").as_string();
    if (const auto* type = value.find("type")) ref.type = parse_label_type(type->as_string());
    return ref;
}

std::vector<DeltaOp::OpRef> parse_ops(const json::Value& value) {
    std::vector<DeltaOp::OpRef> ops;
    for (const auto& action : value.as_array()) {
        DeltaOp::OpRef op;
        const auto& kind = action.at("op").as_string();
        if (kind == "pop") {
            op.kind = Op::Kind::Pop;
        } else if (kind == "push" || kind == "swap") {
            op.kind = kind == "push" ? Op::Kind::Push : Op::Kind::Swap;
            op.label = parse_label_ref(action);
        } else {
            throw model_error("unknown action op '" + kind + "'");
        }
        ops.push_back(std::move(op));
    }
    return ops;
}

/// Resolution context: looks names up against the copied network, tracking
/// whether any label had to be minted.
struct Resolver {
    Network& network;
    bool label_added = false;

    RouterId router(const std::string& name) const {
        const auto id = network.topology.find_router(name);
        if (!id) throw model_error("delta references unknown router '" + name + "'");
        return *id;
    }
    LinkId in_link(const std::string& router_name, const std::string& interface) const {
        const auto link = network.topology.in_link_through(router(router_name), interface);
        if (!link)
            throw model_error("router '" + router_name +
                              "' has no incoming link through interface '" + interface + "'");
        return *link;
    }
    LinkId out_link(const std::string& router_name, const std::string& interface) const {
        const auto link = network.topology.out_link_through(router(router_name), interface);
        if (!link)
            throw model_error("router '" + router_name +
                              "' has no outgoing link through interface '" + interface + "'");
        return *link;
    }
    /// Intern, noting first sightings (a fresh label widens the alphabet).
    Label mint(const DeltaOp::LabelRef& ref) {
        if (!network.labels.find(ref.type, ref.name)) label_added = true;
        return network.labels.add(ref.type, ref.name);
    }
    /// Lookup-only: removal ops address existing labels; an unknown one can
    /// match nothing, which the caller reports as a failed removal.
    std::optional<Label> existing(const DeltaOp::LabelRef& ref) const {
        return network.labels.find(ref.type, ref.name);
    }
};

} // namespace

NetworkDelta NetworkDelta::from_json(const json::Value& value) {
    NetworkDelta delta;
    for (const auto& item : value.at("operations").as_array()) {
        DeltaOp op;
        const auto& kind = item.at("op").as_string();
        op.router = item.at("router").as_string();
        if (kind == "add-rule" || kind == "remove-rule" || kind == "remove-entry") {
            op.in_interface = item.at("from").as_string();
            op.label = parse_label_ref(item);
        }
        if (kind == "add-rule") {
            op.kind = DeltaOp::Kind::AddRule;
            op.out_interface = item.at("to").as_string();
            if (const auto* priority = item.find("priority")) {
                if (priority->as_int() < 1)
                    throw model_error("delta rule priority must be >= 1");
                op.priority = static_cast<std::uint32_t>(priority->as_int());
            }
            if (const auto* ops = item.find("ops")) op.ops = parse_ops(*ops);
        } else if (kind == "remove-rule") {
            op.kind = DeltaOp::Kind::RemoveRule;
            op.out_interface = item.at("to").as_string();
            if (const auto* ops = item.find("ops")) {
                op.ops = parse_ops(*ops);
                op.match_ops = true;
            }
        } else if (kind == "remove-entry") {
            op.kind = DeltaOp::Kind::RemoveEntry;
        } else if (kind == "link-state") {
            op.kind = DeltaOp::Kind::LinkState;
            op.out_interface = item.at("interface").as_string();
            op.up = item.at("up").as_bool();
        } else if (kind == "set-distance") {
            op.kind = DeltaOp::Kind::SetDistance;
            op.out_interface = item.at("interface").as_string();
            if (item.at("distance").as_int() < 0)
                throw model_error("delta link distance must be >= 0");
            op.distance = static_cast<std::uint64_t>(item.at("distance").as_int());
        } else {
            throw model_error("unknown delta op '" + kind +
                              "' (expected add-rule, remove-rule, remove-entry, "
                              "link-state or set-distance)");
        }
        delta.ops.push_back(std::move(op));
    }
    return delta;
}

void DeltaEffects::merge(const DeltaEffects& other) {
    const auto unite = [](std::vector<LinkId>& into, const std::vector<LinkId>& from) {
        into.insert(into.end(), from.begin(), from.end());
        std::sort(into.begin(), into.end());
        into.erase(std::unique(into.begin(), into.end()), into.end());
    };
    unite(entry_links, other.entry_links);
    unite(state_links, other.state_links);
    unite(distance_links, other.distance_links);
    label_added = label_added || other.label_added;
}

AppliedDelta apply_delta(const Network& base, const NetworkDelta& delta) {
    // Deep copy (value semantics throughout the model layer): the base stays
    // untouched for in-flight queries on the old generation.
    auto copy = std::make_shared<Network>(base);
    Resolver resolve{*copy};
    DeltaEffects effects;

    for (const auto& op : delta.ops) {
        switch (op.kind) {
            case DeltaOp::Kind::AddRule: {
                const auto in = resolve.in_link(op.router, op.in_interface);
                const auto out = resolve.out_link(op.router, op.out_interface);
                std::vector<Op> ops;
                ops.reserve(op.ops.size());
                for (const auto& action : op.ops)
                    ops.push_back(action.kind == Op::Kind::Pop
                                      ? Op::pop()
                                      : Op{action.kind, resolve.mint(action.label)});
                copy->routing.add_rule(in, resolve.mint(op.label), op.priority, out,
                                       std::move(ops));
                effects.entry_links.push_back(in);
                break;
            }
            case DeltaOp::Kind::RemoveRule: {
                const auto in = resolve.in_link(op.router, op.in_interface);
                const auto out = resolve.out_link(op.router, op.out_interface);
                const auto label = resolve.existing(op.label);
                std::size_t removed = 0;
                std::vector<Op> ops;
                bool resolvable = label.has_value();
                if (resolvable && op.match_ops) {
                    ops.reserve(op.ops.size());
                    for (const auto& action : op.ops) {
                        if (action.kind == Op::Kind::Pop) {
                            ops.push_back(Op::pop());
                            continue;
                        }
                        const auto operand = resolve.existing(action.label);
                        if (!operand) {
                            resolvable = false; // unknown operand: matches nothing
                            break;
                        }
                        ops.push_back(Op{action.kind, *operand});
                    }
                }
                if (resolvable)
                    removed = copy->routing.remove_rule(in, *label, out,
                                                        op.match_ops ? &ops : nullptr);
                if (removed == 0)
                    throw model_error("delta remove-rule matched no rule on router '" +
                                      op.router + "' (" + op.in_interface + ", " +
                                      op.label.name + ") -> " + op.out_interface);
                effects.entry_links.push_back(in);
                break;
            }
            case DeltaOp::Kind::RemoveEntry: {
                const auto in = resolve.in_link(op.router, op.in_interface);
                const auto label = resolve.existing(op.label);
                if (!label || !copy->routing.remove_entry(in, *label))
                    throw model_error("delta remove-entry matched no entry on router '" +
                                      op.router + "' (" + op.in_interface + ", " +
                                      op.label.name + ")");
                effects.entry_links.push_back(in);
                break;
            }
            case DeltaOp::Kind::LinkState: {
                const auto link = resolve.out_link(op.router, op.out_interface);
                if (copy->topology.link_up(link) != op.up) {
                    copy->topology.set_link_state(link, op.up);
                    effects.state_links.push_back(link);
                }
                break;
            }
            case DeltaOp::Kind::SetDistance: {
                const auto link = resolve.out_link(op.router, op.out_interface);
                if (copy->topology.link(link).distance != op.distance) {
                    copy->topology.set_distance(link, op.distance);
                    effects.distance_links.push_back(link);
                }
                break;
            }
        }
    }

    // A batch can touch the same link repeatedly; report each link once.
    const auto dedup = [](std::vector<LinkId>& links) {
        std::sort(links.begin(), links.end());
        links.erase(std::unique(links.begin(), links.end()), links.end());
    };
    dedup(effects.entry_links);
    dedup(effects.state_links);
    dedup(effects.distance_links);
    effects.label_added = resolve.label_added;
    return {std::move(copy), std::move(effects)};
}

} // namespace aalwines::delta
