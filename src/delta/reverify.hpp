#pragma once
// Incremental re-verification over a patched network: the tiering brain of
// the what-if PATCH pipeline.
//
// A Reverifier owns the evolving network (a chain of copy-on-write
// snapshots minted by apply()) and a pool of per-query *sessions*.  Each
// session keeps the parsed query, the resolved options and — crucially — a
// verify::TranslationCache whose lazily-materialized PDA survives across
// generations.  When the same query is verified again after a patch, the
// session decides between three paths, cheapest first:
//
//   Reused — the accumulated deltas since the session's base generation
//            touch neither the materialized translation footprint nor any
//            initial-configuration candidate link: the stored result is
//            provably identical, return it without running anything.
//   Warm   — rebase the translation onto the new snapshot (invalidating
//            only the affected frontier) and re-run saturation; untouched
//            materialized states are reused.  Answers are byte-identical
//            to a cold recompile (see Translation::rebase).
//   Cold   — rebuild from scratch: first sight of the query, a delta that
//            minted a new label (alphabet change), an effects window
//            overflow, a concurrently busy session, or an engine/mode the
//            warm path does not support (only lazy dual/weighted qualify).
//
// Thread-safe: apply() and verify() may race freely; a session is used by
// at most one verification at a time (competitors fall back to Cold).

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "cli/options.hpp"
#include "delta/delta.hpp"
#include "util/mutex.hpp"
#include "verify/engine.hpp"
#include "verify/translation.hpp"

namespace aalwines::delta {

/// How a verification was answered — surfaced in results and telemetry
/// (delta_tier1_reused / delta_tier2_resaturations / delta_cold_rebuilds).
enum class VerifyPath : std::uint8_t { Reused, Warm, Cold };

[[nodiscard]] std::string_view to_string(VerifyPath path);

class Reverifier {
public:
    /// `network`: the generation-0 snapshot.  `max_sessions` bounds the
    /// per-query session pool (LRU-evicted; 0 disables sessions entirely,
    /// making every verify() Cold).
    explicit Reverifier(std::shared_ptr<const Network> network,
                        std::size_t max_sessions = 64);
    ~Reverifier();

    Reverifier(const Reverifier&) = delete;
    Reverifier& operator=(const Reverifier&) = delete;

    struct Applied {
        std::uint64_t generation = 0; ///< the generation the delta produced
        DeltaEffects effects;         ///< what it disturbed (deduplicated)
    };

    /// Apply a delta on top of the current snapshot and publish the result
    /// as the next generation.  Throws model_error when the delta does not
    /// resolve; nothing is published in that case.  In-flight
    /// verifications keep their own snapshot and are unaffected.
    Applied apply(const NetworkDelta& delta);

    struct Outcome {
        verify::VerifyResult result;
        VerifyPath path = VerifyPath::Cold;
        std::uint64_t generation = 0; ///< generation the result was computed on
    };

    /// Verify `query_text` under `spec` against the current generation.
    /// Throws what query parsing / option resolution throw (parse_error,
    /// usage_error, model_error); engine-level errors also propagate.
    [[nodiscard]] Outcome verify(const std::string& query_text,
                                 const cli::VerifySpec& spec);

    /// The current snapshot (for stats endpoints; cheap pointer copy).
    [[nodiscard]] std::shared_ptr<const Network> network() const;
    [[nodiscard]] std::uint64_t generation() const;

private:
    struct Session;

    /// Union of the per-generation effects in (base, current]; nullopt when
    /// the window no longer reaches back to `base` (session must go Cold).
    [[nodiscard]] std::optional<DeltaEffects> effects_since(std::uint64_t base) const
        REQUIRES(_mutex);

    mutable util::Mutex _mutex;
    std::shared_ptr<const Network> _network GUARDED_BY(_mutex);
    std::uint64_t _generation GUARDED_BY(_mutex) = 0;
    /// effects of the delta generation g -> g+1 sits at index
    /// g - _effects_base; trimmed from the front once the window exceeds
    /// k_effects_window (sessions older than the window rebuild Cold).
    std::deque<DeltaEffects> _effects GUARDED_BY(_mutex);
    std::uint64_t _effects_base GUARDED_BY(_mutex) = 0;
    std::unordered_map<std::string, std::unique_ptr<Session>> _sessions GUARDED_BY(_mutex);
    std::uint64_t _session_clock GUARDED_BY(_mutex) = 0; ///< LRU tick
    std::size_t _max_sessions;

    static constexpr std::size_t k_effects_window = 1024;
};

} // namespace aalwines::delta
