#include "delta/reverify.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"

namespace aalwines::delta {

namespace {

// Field separator for session keys (cannot appear in query text or specs).
constexpr char k_sep = '\x1f';

std::string session_key(const std::string& query, const cli::VerifySpec& spec) {
    std::string key = query;
    key += k_sep;
    key += spec.engine;
    key += k_sep;
    key += spec.weight;
    key += k_sep;
    key += std::to_string(spec.reduction);
    key += k_sep;
    key += spec.trace ? '1' : '0';
    key += k_sep;
    key += std::to_string(spec.witnesses);
    key += k_sep;
    key += std::to_string(spec.max_iterations);
    key += k_sep;
    key += spec.translation;
    key += k_sep;
    key += spec.solver_threads;
    return key;
}

/// Only the native post* engines with a lazy translation can rebase; Moped
/// re-serialises and Exact re-enumerates from scratch every time, so a
/// session would buy nothing.
bool warm_capable(const verify::VerifyOptions& options) {
    if (options.engine != verify::EngineKind::Dual &&
        options.engine != verify::EngineKind::Weighted)
        return false;
    return verify::use_lazy_translation(options.translation, options.engine);
}

} // namespace

std::string_view to_string(VerifyPath path) {
    switch (path) {
        case VerifyPath::Reused: return "reused";
        case VerifyPath::Warm: return "warm";
        case VerifyPath::Cold: return "cold";
    }
    return "?";
}

/// One per (query text, spec) pair.  Lifecycle: created busy, published in
/// the session map, then mutated only by the thread that claimed `busy`
/// under the Reverifier mutex — the claim/release pairs give the necessary
/// happens-before edges, so the non-flag fields need no lock of their own.
/// Heap-allocated and address-stable: `cache` points into `query`,
/// `weights` and `network`.
struct Reverifier::Session {
    std::shared_ptr<const Network> network; ///< snapshot the cache is based on
    std::uint64_t generation = 0;           ///< that snapshot's generation
    query::Query query;
    WeightExpr weights;
    verify::VerifyOptions options; ///< weights pointer targets `weights`
    std::unique_ptr<verify::TranslationCache> cache;
    verify::VerifyResult last;
    bool has_result = false;
    bool busy = false;
    std::uint64_t last_used = 0; ///< LRU tick
};

Reverifier::Reverifier(std::shared_ptr<const Network> network, std::size_t max_sessions)
    : _network(std::move(network)), _max_sessions(max_sessions) {
    AALWINES_CHECK(_network != nullptr, "Reverifier requires a network snapshot");
}

Reverifier::~Reverifier() = default;

std::shared_ptr<const Network> Reverifier::network() const {
    const util::MutexLock lock(_mutex);
    return _network;
}

std::uint64_t Reverifier::generation() const {
    const util::MutexLock lock(_mutex);
    return _generation;
}

Reverifier::Applied Reverifier::apply(const NetworkDelta& delta) {
    // Resolve-and-publish is one exclusive section so concurrent apply()
    // calls serialise (no lost snapshot); deltas are small, the copy is the
    // dominant cost and in-flight queries never wait on it — they hold
    // their own snapshot.
    const util::MutexLock lock(_mutex);
    auto applied = apply_delta(*_network, delta);
    _network = std::move(applied.network);
    ++_generation;
    _effects.push_back(applied.effects);
    while (_effects.size() > k_effects_window) {
        _effects.pop_front();
        ++_effects_base;
    }
    return {_generation, std::move(applied.effects)};
}

std::optional<DeltaEffects> Reverifier::effects_since(std::uint64_t base) const {
    if (base < _effects_base) return std::nullopt; // window trimmed past it
    DeltaEffects out;
    for (std::uint64_t g = base; g < _generation; ++g) out.merge(_effects[g - _effects_base]);
    return out;
}

Reverifier::Outcome Reverifier::verify(const std::string& query_text,
                                       const cli::VerifySpec& spec) {
    const auto key = session_key(query_text, spec);
    std::shared_ptr<const Network> current;
    std::uint64_t gen = 0;
    Session* session = nullptr;
    std::optional<DeltaEffects> pending; ///< deltas in (session base, current]
    bool session_exists = false;

    {
        const util::MutexLock lock(_mutex);
        current = _network;
        gen = _generation;
        if (auto it = _sessions.find(key); it != _sessions.end()) {
            session_exists = true;
            if (!it->second->busy) {
                session = it->second.get();
                session->busy = true;
                session->last_used = ++_session_clock;
                if (session->generation != gen) pending = effects_since(session->generation);
            }
            // else: another thread is verifying through this session right
            // now; fall through to a standalone cold run rather than wait.
        }
    }

    // Helper: store a warm/cold session result and release the claim.
    const auto finish = [&](Session& s, VerifyPath path,
                            verify::VerifyResult result) -> Outcome {
        Outcome out;
        out.path = path;
        out.generation = s.generation;
        const util::MutexLock lock(_mutex);
        s.last = std::move(result);
        s.has_result = true;
        s.busy = false;
        out.result = s.last;
        return out;
    };
    // Helper: a session failed mid-flight (exception); drop it entirely so
    // no half-rebased cache survives, then let the error propagate.
    const auto drop = [&]() {
        const util::MutexLock lock(_mutex);
        _sessions.erase(key);
    };

    if (session != nullptr) {
        if (session->generation == gen && session->has_result) {
            // Same generation, same query: the stored result is the answer.
            telemetry::count(telemetry::Counter::delta_tier1_reused);
            Outcome out;
            out.path = VerifyPath::Reused;
            out.generation = session->generation;
            const util::MutexLock lock(_mutex);
            out.result = session->last;
            session->busy = false;
            return out;
        }
        bool rebuild = false;
        if (session->generation != gen) {
            if (!pending || pending->label_added) {
                // Effects window overflow, or the alphabet grew: the cached
                // PDA's symbol domain is stale — rebuild from scratch.
                rebuild = true;
            } else {
                // Split the dirty links by how they reach a control state's
                // rules.  `dirty`: the link's own entries emit different
                // rules (entry edits, up/down flips, weighted repricing).
                // `behavior`: the link changed as an *out-link* — up/down
                // flips (skipped rules, failure budget) and, weighted,
                // distance changes; a pure entry edit never lands here, so
                // forwarding *into* an edited link stays untouched and the
                // common single-entry delta reuses Tier 1.  Distance
                // changes only price rules — invisible to an unweighted
                // run.  `behavior` doubles as the initial-state filter: only
                // up/down (membership) and weighted distance (entry weight)
                // can perturb initial configurations.
                const bool weighted = session->options.weights != nullptr &&
                                      !session->options.weights->empty();
                const auto n_links = current->topology.link_count();
                std::vector<bool> dirty(n_links, false);
                std::vector<bool> behavior(n_links, false);
                for (const auto link : pending->entry_links) dirty[link] = true;
                for (const auto link : pending->state_links)
                    dirty[link] = behavior[link] = true;
                if (weighted)
                    for (const auto link : pending->distance_links)
                        dirty[link] = behavior[link] = true;

                const auto touches = [&](verify::Translation* t) {
                    return t != nullptr && (t->footprint_touches(dirty, behavior) ||
                                            t->initial_links_touch(behavior));
                };
                if (session->has_result && !touches(session->cache->over_or_null()) &&
                    !touches(session->cache->under_or_null())) {
                    // Tier 1: no delta reaches the materialized footprint or
                    // an initial-configuration candidate, so a cold rerun
                    // would replay the exact saturation transcript — the
                    // stored result is byte-identical to what it would
                    // compute.  The session deliberately stays at its base
                    // generation (its snapshot keeps the old network alive).
                    telemetry::count(telemetry::Counter::delta_tier1_reused);
                    Outcome out;
                    out.path = VerifyPath::Reused;
                    out.generation = session->generation;
                    const util::MutexLock lock(_mutex);
                    out.result = session->last;
                    session->busy = false;
                    return out;
                }

                // Tier 2: invalidate the affected frontier and re-saturate.
                try {
                    session->cache->rebase(*current, dirty, behavior);
                } catch (...) {
                    drop();
                    throw;
                }
                session->network = current;
                session->generation = gen;
            }
        }

        if (rebuild) {
            try {
                // Reset first: the cache points into the fields replaced next.
                session->cache.reset();
                session->network = current;
                session->generation = gen;
                session->query = query::parse_query(query_text, *current);
                session->weights = {};
                session->options = cli::make_verify_options(spec, session->weights);
                session->has_result = false;
                session->cache = std::make_unique<verify::TranslationCache>(
                    *session->network, session->query, session->options.weights,
                    /*lazy=*/true);
            } catch (...) {
                drop();
                throw;
            }
        }

        verify::VerifyResult result;
        try {
            result = verify::verify(*session->network, session->query, session->options,
                                    *session->cache);
        } catch (...) {
            drop();
            throw;
        }
        telemetry::count(rebuild ? telemetry::Counter::delta_cold_rebuilds
                                 : telemetry::Counter::delta_tier2_resaturations);
        return finish(*session, rebuild ? VerifyPath::Cold : VerifyPath::Warm,
                      std::move(result));
    }

    // No claimable session: build the query/options either way (both the
    // standalone run and a fresh session need them).
    auto fresh = std::make_unique<Session>();
    fresh->network = current;
    fresh->generation = gen;
    fresh->query = query::parse_query(query_text, *current);
    fresh->options = cli::make_verify_options(spec, fresh->weights);
    fresh->busy = true;
    fresh->last_used = 0;

    if (session_exists || _max_sessions == 0 || !warm_capable(fresh->options)) {
        // Busy session, sessions disabled, or an engine the warm path can't
        // serve: one-shot cold verification, no state kept.
        telemetry::count(telemetry::Counter::delta_cold_rebuilds);
        Outcome out;
        out.result = verify::verify(*current, fresh->query, fresh->options);
        out.path = VerifyPath::Cold;
        out.generation = gen;
        return out;
    }

    fresh->cache = std::make_unique<verify::TranslationCache>(
        *fresh->network, fresh->query, fresh->options.weights, /*lazy=*/true);

    {
        const util::MutexLock lock(_mutex);
        if (_sessions.find(key) != _sessions.end()) {
            // Lost the creation race; run this one standalone below.
            session = nullptr;
        } else {
            fresh->last_used = ++_session_clock;
            session = fresh.get();
            _sessions.emplace(key, std::move(fresh));
            // LRU-evict idle sessions beyond the cap (busy ones are skipped;
            // transiently exceeding the cap while every session is busy is
            // fine — the next insertion retries).
            while (_sessions.size() > _max_sessions) {
                auto victim = _sessions.end();
                for (auto it = _sessions.begin(); it != _sessions.end(); ++it) {
                    if (it->second->busy || it->second.get() == session) continue;
                    if (victim == _sessions.end() ||
                        it->second->last_used < victim->second->last_used)
                        victim = it;
                }
                if (victim == _sessions.end()) break;
                _sessions.erase(victim);
            }
        }
    }

    if (session == nullptr) {
        telemetry::count(telemetry::Counter::delta_cold_rebuilds);
        Outcome out;
        out.result = verify::verify(*current, fresh->query, fresh->options, *fresh->cache);
        out.path = VerifyPath::Cold;
        out.generation = gen;
        return out;
    }

    verify::VerifyResult result;
    try {
        result = verify::verify(*session->network, session->query, session->options,
                                *session->cache);
    } catch (...) {
        drop();
        throw;
    }
    telemetry::count(telemetry::Counter::delta_cold_rebuilds);
    return finish(*session, VerifyPath::Cold, std::move(result));
}

} // namespace aalwines::delta
