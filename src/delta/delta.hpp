#pragma once
// Network deltas: the incremental what-if layer's change vocabulary.
//
// A NetworkDelta is a small, ordered batch of edits against a network
// snapshot — add/remove a forwarding rule, drop a whole routing entry, flip
// a link administratively up/down, or change a link's distance.  Deltas
// address everything by *name* (router, interface, label), exactly like the
// XML routing format, so a client can author one without knowing internal
// ids; `apply_delta` resolves the names against the base snapshot and
// produces a fresh copy-on-write Network plus a DeltaEffects summary that
// tells the verification layer which links were disturbed.
//
// The base network is never mutated: concurrent queries against the old
// generation keep their shared_ptr and stay valid for their whole run.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "model/routing.hpp"

namespace aalwines::delta {

/// One edit.  `kind` decides which fields are meaningful; name fields are
/// resolved against the base network at apply time.
struct DeltaOp {
    enum class Kind : std::uint8_t {
        AddRule,     ///< append a forwarding rule to (router, in, label)
        RemoveRule,  ///< remove rule(s) matching out-link (and ops, if given)
        RemoveEntry, ///< drop the whole (router, in, label) routing entry
        LinkState,   ///< administratively set router.interface up or down
        SetDistance, ///< change d(e) of the link through router.interface
    };

    /// A label operand addressed by (type, name) — the XML `type` attribute
    /// spelling: "mpls" (default), "smpls", "ip".
    struct LabelRef {
        LabelType type = LabelType::Mpls;
        std::string name;
    };

    /// A stack operation with named operand (operand unused for Pop).
    struct OpRef {
        Op::Kind kind = Op::Kind::Pop;
        LabelRef label;
    };

    Kind kind = Kind::AddRule;
    std::string router;         ///< all kinds
    std::string in_interface;   ///< AddRule/RemoveRule/RemoveEntry: entry in-link
    std::string out_interface;  ///< AddRule/RemoveRule: rule out-link;
                                ///< LinkState/SetDistance: the addressed link
    LabelRef label;             ///< AddRule/RemoveRule/RemoveEntry: entry label
    std::vector<OpRef> ops;     ///< AddRule: the rule's operations
    bool match_ops = false;     ///< RemoveRule: require exact ops match too
    std::uint32_t priority = 1; ///< AddRule: 1-based TE group priority
    bool up = true;             ///< LinkState
    std::uint64_t distance = 1; ///< SetDistance
};

/// An ordered batch of edits applied atomically (all or nothing — any
/// resolution error aborts the whole delta before a copy is published).
struct NetworkDelta {
    std::vector<DeltaOp> ops;

    /// Parse the wire form: `{"operations": [{"op": "add-rule", ...}, ...]}`.
    /// See docs/FORMATS.md for the schema.  Throws model_error on unknown
    /// op kinds or missing fields (structural errors); name-resolution
    /// errors surface later, from apply_delta.
    [[nodiscard]] static NetworkDelta from_json(const json::Value& value);
};

/// Which parts of the network a delta disturbed, in base-network link ids —
/// the input to the re-verification tiering decision.  Link ids are stable
/// across apply_delta (deltas never add routers or links), so effects from
/// successive generations can be merged into one dirty set.
struct DeltaEffects {
    std::vector<LinkId> entry_links;    ///< in-links whose routing entry changed
    std::vector<LinkId> state_links;    ///< links whose up/down state flipped
    std::vector<LinkId> distance_links; ///< links whose distance changed
    /// True when the delta minted a label name/type the base network had
    /// never seen.  A new label widens the PDA alphabet and can change
    /// query atom sets, so warm re-verification is off the table.
    bool label_added = false;

    [[nodiscard]] bool empty() const {
        return entry_links.empty() && state_links.empty() &&
               distance_links.empty() && !label_added;
    }
    /// Accumulate `other` into this (set-union per category).
    void merge(const DeltaEffects& other);
};

/// The outcome of applying a delta: a fresh snapshot plus its effects.
struct AppliedDelta {
    std::shared_ptr<const Network> network;
    DeltaEffects effects;
};

/// Apply `delta` to a copy of `base` (never mutating it).  All names are
/// resolved against `base`; an unknown router/interface or an ill-formed
/// rule (out-link not leaving the in-link's target router) throws
/// model_error and publishes nothing.  Ops referencing labels the base has
/// never seen mint them (and set effects.label_added).
[[nodiscard]] AppliedDelta apply_delta(const Network& base, const NetworkDelta& delta);

} // namespace aalwines::delta
