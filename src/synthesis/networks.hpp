#pragma once
// Ready-made benchmark networks standing in for the paper's datasets
// (DESIGN.md §3 documents the substitutions).

#include <string>
#include <vector>

#include "synthesis/dataplane.hpp"

namespace aalwines::synthesis {

/// A NORDUnet-like operator network: 31 routers across the Nordics and the
/// major European/transatlantic exchange points the operator peers at, with
/// geographically derived link latencies, a full LSP mesh between edge
/// routers, fast-failover protection and `service_chains` service-label
/// chains.  `service_chains` scales the rule count (the paper's snapshot
/// has >250k rules; ~1000 chains ≈ 15-20k rules; scale up as needed).
[[nodiscard]] SyntheticNetwork make_nordunet_like(std::size_t service_chains = 1000,
                                                  std::uint64_t seed = 1);

/// One Topology-Zoo-like instance.  `index` selects deterministically from
/// a family of generator/size combinations matched to the Zoo distribution
/// (tens of routers typical, up to ~240); the same index always produces
/// the same network.
struct ZooInstance {
    std::string name;
    SyntheticNetwork net;
};
[[nodiscard]] ZooInstance make_zoo_like(std::size_t index);

/// Number of distinct instances make_zoo_like can produce.
[[nodiscard]] std::size_t zoo_like_count();

} // namespace aalwines::synthesis
