#include "synthesis/networks.hpp"

namespace aalwines::synthesis {

namespace {
enum class Family { Ring, Grid, Waxman, Backbone, Clos };

struct Spec {
    Family family;
    std::size_t a; ///< primary size parameter
    std::size_t b; ///< secondary parameter (grid height / leaves per core)
    const char* name;
};

// Size mix modelled on the Internet Topology Zoo: mostly small-to-medium
// networks (tens of routers), a few large ones, topping out around 240
// routers; the paper reports an average of 84.
constexpr Spec k_specs[] = {
    {Family::Ring, 12, 0, "ring12"},        {Family::Ring, 24, 0, "ring24"},
    {Family::Ring, 48, 0, "ring48"},        {Family::Grid, 4, 4, "grid4x4"},
    {Family::Grid, 5, 6, "grid5x6"},        {Family::Grid, 8, 8, "grid8x8"},
    {Family::Grid, 10, 12, "grid10x12"},    {Family::Waxman, 20, 0, "waxman20"},
    {Family::Waxman, 36, 0, "waxman36"},    {Family::Waxman, 60, 0, "waxman60"},
    {Family::Waxman, 90, 0, "waxman90"},    {Family::Waxman, 140, 0, "waxman140"},
    {Family::Backbone, 6, 3, "backbone6x3"},   {Family::Backbone, 8, 5, "backbone8x5"},
    {Family::Backbone, 12, 6, "backbone12x6"}, {Family::Backbone, 16, 9, "backbone16x9"},
    {Family::Backbone, 20, 11, "backbone20x11"},
    {Family::Clos, 4, 8, "clos4x8"},           {Family::Clos, 6, 16, "clos6x16"},
};
} // namespace

std::size_t zoo_like_count() { return std::size(k_specs); }

ZooInstance make_zoo_like(std::size_t index) {
    const auto& spec = k_specs[index % std::size(k_specs)];
    const std::uint64_t seed = 0x5eed0000 + index;

    SyntheticTopology topo;
    switch (spec.family) {
        case Family::Ring: topo = make_ring(spec.a); break;
        case Family::Grid: topo = make_grid(spec.a, spec.b); break;
        case Family::Waxman: topo = make_waxman(spec.a, 0.4, 0.25, seed); break;
        case Family::Backbone: topo = make_backbone(spec.a, spec.b, seed); break;
        case Family::Clos: topo = make_clos(spec.a, spec.b); break;
    }

    DataplaneOptions options;
    options.fast_failover = true;
    options.seed = seed;
    // Keep the dataplane size proportional to the topology, as the paper's
    // pipeline does (LSPs between all edge pairs would grow quadratically).
    const auto routers = topo.topology.router_count();
    options.max_lsp_pairs = routers * 4;
    options.service_chains = routers / 2;

    ZooInstance instance;
    instance.name = spec.name;
    instance.net = build_dataplane(std::move(topo), options);
    instance.net.network.name = instance.name;
    return instance;
}

} // namespace aalwines::synthesis
