#pragma once
// MPLS dataplane synthesis (mirrors the pipeline the paper used to derive
// forwarding tables for the Topology Zoo networks, §5): label-switched
// paths between edge routers along shortest paths, local fast-failover
// protection via facility-backup tunnels around each protected link, and
// NORDUnet-style service-label chains.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/routing.hpp"
#include "synthesis/topologies.hpp"

namespace aalwines::synthesis {

struct DataplaneOptions {
    /// Cap on the number of ordered edge-router pairs receiving an LSP
    /// (pairs are chosen in a seeded random order when capped).
    std::size_t max_lsp_pairs = SIZE_MAX;
    /// Protect every LSP/service hop with a priority-2 facility-backup
    /// tunnel around the primary link (shortest detour avoiding it).
    bool fast_failover = true;
    /// Number of NORDUnet-style service-label chains (per-hop smpls swaps
    /// between two random edge routers; the label leaves the network).
    std::size_t service_chains = 0;
    std::uint64_t seed = 1;
};

/// A synthesized network plus the handles the benchmarks need to phrase
/// queries: edge routers, their IP destination labels and the ingress
/// service labels of the generated chains.
struct SyntheticNetwork {
    Network network;
    std::vector<RouterId> edge_routers;
    std::vector<Label> ip_labels;      ///< ip label of each edge router (aligned)
    std::vector<Label> service_labels; ///< ingress label of each service chain
    /// Ordered edge-router pairs that actually received an LSP (when
    /// max_lsp_pairs caps the mesh, queries should target these).
    std::vector<std::pair<RouterId, RouterId>> lsp_pairs;
    /// (ingress, egress) of each service chain, aligned with service_labels.
    std::vector<std::pair<RouterId, RouterId>> service_pairs;
};

/// Query atom matching the link through which traffic leaves the network at
/// `edge` (the edge-router → external-stub link): "[R#X_R]".
[[nodiscard]] std::string exit_atom(const SyntheticNetwork& net, RouterId edge);

/// Query atom matching every exit link of the network:
/// "[R1#X_R1, R2#X_R2, ...]".
[[nodiscard]] std::string all_exits_atom(const SyntheticNetwork& net);

/// Build forwarding tables on top of `topo`.  Adds one external stub router
/// per edge router (the links through which traffic enters and leaves the
/// network — traces start and end there).
[[nodiscard]] SyntheticNetwork build_dataplane(SyntheticTopology topo,
                                               const DataplaneOptions& options = {});

/// The running example of the paper (Figure 1): routers v0..v4, links
/// e0..e7, the exact routing table of Figure 1b.  Label names: "ip1" (IP),
/// "10".."44" with the bottom-of-stack bit ("s10".."s44" in paper
/// rendering) and plain MPLS label "30".
[[nodiscard]] Network make_figure1_network();

} // namespace aalwines::synthesis
