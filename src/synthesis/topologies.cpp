#include "synthesis/topologies.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

namespace aalwines::synthesis {

namespace {
/// Place routers around a reference point so haversine distances are sane.
constexpr double k_base_lat = 50.0;
constexpr double k_base_lng = 10.0;

std::string router_name(std::size_t index) { return "R" + std::to_string(index); }
} // namespace

SyntheticTopology make_ring(std::size_t n) {
    SyntheticTopology out;
    auto& topology = out.topology;
    for (std::size_t i = 0; i < n; ++i) {
        const auto router = topology.add_router(router_name(i));
        const double angle = 2.0 * std::numbers::pi * static_cast<double>(i) /
                             static_cast<double>(n);
        topology.set_coordinate(router,
                                {k_base_lat + 2.0 * std::sin(angle),
                                 k_base_lng + 3.0 * std::cos(angle)});
        out.edge_routers.push_back(router);
    }
    for (std::size_t i = 0; i < n; ++i) {
        const auto a = static_cast<RouterId>(i);
        const auto b = static_cast<RouterId>((i + 1) % n);
        topology.add_duplex(a, "ring_cw", b, "ring_ccw");
    }
    topology.distances_from_coordinates();
    return out;
}

SyntheticTopology make_grid(std::size_t width, std::size_t height) {
    SyntheticTopology out;
    auto& topology = out.topology;
    auto index = [&](std::size_t x, std::size_t y) {
        return static_cast<RouterId>(y * width + x);
    };
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            const auto router = topology.add_router(router_name(y * width + x));
            topology.set_coordinate(router, {k_base_lat + 0.3 * static_cast<double>(y),
                                             k_base_lng + 0.3 * static_cast<double>(x)});
            if (x == 0 || y == 0 || x + 1 == width || y + 1 == height)
                out.edge_routers.push_back(router);
        }
    }
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            if (x + 1 < width)
                topology.add_duplex(index(x, y), "east", index(x + 1, y), "west");
            if (y + 1 < height)
                topology.add_duplex(index(x, y), "south", index(x, y + 1), "north");
        }
    }
    topology.distances_from_coordinates();
    return out;
}

SyntheticTopology make_waxman(std::size_t n, double alpha, double beta,
                              std::uint64_t seed) {
    SyntheticTopology out;
    auto& topology = out.topology;
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> unit(0.0, 1.0);

    std::vector<std::pair<double, double>> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = unit(rng);
        const double y = unit(rng);
        points.emplace_back(x, y);
        const auto router = topology.add_router(router_name(i));
        topology.set_coordinate(router, {k_base_lat + 4.0 * y, k_base_lng + 6.0 * x});
    }

    auto distance = [&](std::size_t a, std::size_t b) {
        const double dx = points[a].first - points[b].first;
        const double dy = points[a].second - points[b].second;
        return std::sqrt(dx * dx + dy * dy);
    };
    const double scale = std::numbers::sqrt2; // max distance in the unit square

    std::vector<std::size_t> interface_counter(n, 0);
    std::vector<std::vector<bool>> connected(n, std::vector<bool>(n, false));
    auto connect = [&](std::size_t a, std::size_t b) {
        if (a == b || connected[a][b]) return;
        connected[a][b] = connected[b][a] = true;
        topology.add_duplex(static_cast<RouterId>(a),
                            "i" + std::to_string(interface_counter[a]++),
                            static_cast<RouterId>(b),
                            "i" + std::to_string(interface_counter[b]++));
    };

    // Spanning tree first (random attachment) so the graph is connected.
    for (std::size_t i = 1; i < n; ++i)
        connect(i, rng() % i);
    // Waxman chords.
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            const double p = alpha * std::exp(-distance(a, b) / (beta * scale));
            if (unit(rng) < p) connect(a, b);
        }
    }
    topology.distances_from_coordinates();

    // Edge routers: the quarter of routers with the fewest links (ties by id).
    std::vector<std::pair<std::size_t, RouterId>> by_degree;
    for (RouterId r = 0; r < n; ++r)
        by_degree.emplace_back(topology.out_links(r).size(), r);
    std::sort(by_degree.begin(), by_degree.end());
    const auto edge_count = std::max<std::size_t>(2, n / 4);
    for (std::size_t i = 0; i < edge_count; ++i)
        out.edge_routers.push_back(by_degree[i].second);
    std::sort(out.edge_routers.begin(), out.edge_routers.end());
    return out;
}

SyntheticTopology make_backbone(std::size_t core, std::size_t leaves_per_core,
                                std::uint64_t seed) {
    SyntheticTopology out;
    auto& topology = out.topology;
    std::mt19937_64 rng(seed);

    for (std::size_t i = 0; i < core; ++i) {
        const auto router = topology.add_router("C" + std::to_string(i));
        const double angle = 2.0 * std::numbers::pi * static_cast<double>(i) /
                             static_cast<double>(core);
        topology.set_coordinate(router, {k_base_lat + 3.0 * std::sin(angle),
                                         k_base_lng + 4.5 * std::cos(angle)});
    }
    for (std::size_t i = 0; i < core; ++i)
        topology.add_duplex(static_cast<RouterId>(i), "cw",
                            static_cast<RouterId>((i + 1) % core), "ccw");
    // A few chords across the core for path diversity.
    for (std::size_t i = 0; i + 2 < core; i += 3)
        topology.add_duplex(static_cast<RouterId>(i), "chord_a",
                            static_cast<RouterId>((i + core / 2) % core), "chord_b");

    std::size_t leaf_index = 0;
    for (std::size_t c = 0; c < core; ++c) {
        for (std::size_t l = 0; l < leaves_per_core; ++l) {
            const auto leaf = topology.add_router("L" + std::to_string(leaf_index));
            const auto core_coord = topology.coordinate(static_cast<RouterId>(c));
            topology.set_coordinate(
                leaf, {core_coord->latitude + 0.1 * static_cast<double>(l + 1),
                       core_coord->longitude + 0.07 * static_cast<double>(l + 1)});
            topology.add_duplex(static_cast<RouterId>(c),
                                "leaf" + std::to_string(leaf_index), leaf, "up");
            // Dual-homing for some leaves: connect to a second random core.
            if (rng() % 3 == 0) {
                const auto second = static_cast<RouterId>(rng() % core);
                if (second != c)
                    topology.add_duplex(second, "leaf2_" + std::to_string(leaf_index),
                                        leaf, "up2");
            }
            out.edge_routers.push_back(leaf);
            ++leaf_index;
        }
    }
    topology.distances_from_coordinates();
    return out;
}

SyntheticTopology make_clos(std::size_t spines, std::size_t leaves) {
    SyntheticTopology out;
    auto& topology = out.topology;
    for (std::size_t s = 0; s < spines; ++s) {
        const auto spine = topology.add_router("S" + std::to_string(s));
        topology.set_coordinate(spine, {k_base_lat + 1.0,
                                        k_base_lng + 0.4 * static_cast<double>(s)});
    }
    for (std::size_t l = 0; l < leaves; ++l) {
        const auto leaf = topology.add_router("T" + std::to_string(l));
        topology.set_coordinate(leaf,
                                {k_base_lat, k_base_lng + 0.3 * static_cast<double>(l)});
        out.edge_routers.push_back(leaf);
        for (std::size_t s = 0; s < spines; ++s)
            topology.add_duplex(static_cast<RouterId>(s), "down" + std::to_string(l),
                                leaf, "up" + std::to_string(s));
    }
    topology.distances_from_coordinates();
    return out;
}

} // namespace aalwines::synthesis
