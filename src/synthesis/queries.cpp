#include "synthesis/queries.hpp"

#include <random>

namespace aalwines::synthesis {

namespace {
std::string router_of(const SyntheticNetwork& net, RouterId router) {
    return net.network.topology.router_name(router);
}

std::string service_atom(const SyntheticNetwork& net, Label label) {
    // Concrete-label atom; the generated service labels are unique by name.
    return "[" + net.network.labels.name_of(label) + "]";
}
} // namespace

std::vector<std::string> make_query_battery(const SyntheticNetwork& net,
                                            const QueryBatteryOptions& options) {
    std::vector<std::string> queries;
    if (net.edge_routers.size() < 2) return queries;
    std::mt19937_64 rng(options.seed);
    std::uniform_int_distribution<std::size_t> pick_edge(0, net.edge_routers.size() - 1);
    std::uniform_int_distribution<std::size_t> pick_k(0, options.failure_bounds.size() - 1);

    // Provisioned endpoints produce the satisfiable half of the battery;
    // random edge pairs add unsatisfiable and near-miss cases.
    auto provisioned_pair = [&](std::string& a, std::string& b) {
        if (!net.lsp_pairs.empty()) {
            const auto& [ra, rb] = net.lsp_pairs[rng() % net.lsp_pairs.size()];
            a = router_of(net, ra);
            b = router_of(net, rb);
            return;
        }
        a = router_of(net, net.edge_routers[pick_edge(rng)]);
        b = router_of(net, net.edge_routers[pick_edge(rng)]);
    };
    auto random_pair = [&](std::string& a, std::string& b) {
        const auto ia = pick_edge(rng);
        auto ib = pick_edge(rng);
        for (int tries = 0; tries < 16 && ib == ia; ++tries) ib = pick_edge(rng);
        a = router_of(net, net.edge_routers[ia]);
        b = router_of(net, net.edge_routers[ib]);
    };

    while (queries.size() < options.count) {
        std::string a, b;
        const auto k = std::to_string(options.failure_bounds[pick_k(rng)]);
        switch (queries.size() % 5) {
            case 0: // plain IP reachability on a provisioned pair (Table 1, row 3)
                provisioned_pair(a, b);
                queries.push_back("<ip> [.#" + a + "] .* [.#" + b + "] <ip> " + k);
                break;
            case 1: // IP reachability on a random pair (often a conclusive NO)
                random_pair(a, b);
                queries.push_back("<ip> [.#" + a + "] .* [.#" + b + "] <ip> " + k);
                break;
            case 2: { // service reachability along a generated chain (rows 1-2)
                if (net.service_pairs.empty()) {
                    provisioned_pair(a, b);
                    queries.push_back("<smpls ip> [.#" + a + "] .* [.#" + b +
                                      "] <(mpls* smpls)? ip> " + k);
                } else {
                    const auto chain = rng() % net.service_pairs.size();
                    a = router_of(net, net.service_pairs[chain].first);
                    b = router_of(net, net.service_pairs[chain].second);
                    queries.push_back("<" + service_atom(net, net.service_labels[chain]) +
                                      " ip> [.#" + a + "] .* [.#" + b +
                                      "] <(mpls* smpls)? ip> " + k);
                }
                break;
            }
            case 3: { // waypointed routing (rows 4-5)
                provisioned_pair(a, b);
                std::string m, unused;
                random_pair(m, unused);
                queries.push_back("<ip> [.#" + a + "] .* [.#" + m + "] .* [.#" + b +
                                  "] <ip> " + k);
                break;
            }
            case 4: // transparency at the exits / unspecific stress query
                if (options.include_stress && queries.size() % 10 == 4) {
                    queries.push_back("<smpls? ip> .* <. smpls ip> " + k);
                } else {
                    provisioned_pair(a, b);
                    const auto edge_b = net.network.topology.find_router(b);
                    queries.push_back("<smpls ip> [.#" + a + "] .* " +
                                      exit_atom(net, *edge_b) + " <mpls+ smpls ip> " + k);
                }
                break;
        }
    }
    return queries;
}

std::vector<std::string> make_table1_queries(const SyntheticNetwork& net) {
    auto edge = [&](std::size_t i) {
        return router_of(net, net.edge_routers[i % net.edge_routers.size()]);
    };
    // Service-chain endpoints (satisfiable service queries).
    std::string svc_label = "smpls", svc_a = edge(0), svc_b = edge(1);
    if (!net.service_pairs.empty()) {
        svc_label = service_atom(net, net.service_labels[0]);
        svc_a = router_of(net, net.service_pairs[0].first);
        svc_b = router_of(net, net.service_pairs[0].second);
    }
    // A provisioned IP pair.
    std::string ip_a = edge(0), ip_b = edge(4);
    if (!net.lsp_pairs.empty()) {
        ip_a = router_of(net, net.lsp_pairs[0].first);
        ip_b = router_of(net, net.lsp_pairs[0].second);
    }
    const auto r6 = edge(6), r4 = edge(4), r2 = edge(2), r18 = edge(8);
    return {
        "<smpls ip> [.#" + r6 + "] .* [.#" + r4 + "] <smpls ip> 1",
        "<smpls ip> [.#" + r2 + "] .* [.#" + r18 + "] <(mpls* smpls)? ip> 1",
        "<ip> [.#" + ip_a + "] .* [.#" + ip_b + "] <ip> 0",
        "<" + svc_label + " ip> [.#" + svc_a + "] .* [.#" + svc_b + "] <smpls ip> 0",
        "<" + svc_label + " ip> [.#" + svc_a + "] .* [.#" + svc_b + "] <smpls ip> 1",
        "<smpls? ip> .* <. smpls ip> 0",
    };
}

} // namespace aalwines::synthesis
