#include "synthesis/networks.hpp"

namespace aalwines::synthesis {

namespace {
struct Site {
    const char* name;
    double lat;
    double lng;
    bool edge; ///< peers with neighbouring networks (LSP/service endpoint)
};

// A 31-router backbone shaped after a Nordic research network: PoPs in the
// Nordic capitals and regional sites, plus the European and transatlantic
// exchange points such an operator peers at.  Coordinates are real cities;
// link latencies derive from the geography.
constexpr Site k_sites[] = {
    {"CPH1", 55.68, 12.57, true},  {"CPH2", 55.62, 12.65, false},
    {"STO1", 59.33, 18.06, true},  {"STO2", 59.36, 17.95, false},
    {"OSL1", 59.91, 10.75, true},  {"OSL2", 59.95, 10.60, false},
    {"HEL1", 60.17, 24.94, true},  {"HEL2", 60.21, 25.08, false},
    {"REY1", 64.13, -21.90, true}, {"TRD1", 63.43, 10.40, false},
    {"BGO1", 60.39, 5.32, false},  {"GOT1", 57.71, 11.97, false},
    {"MMX1", 55.60, 13.00, false}, {"ARH1", 56.16, 10.20, false},
    {"AAL1", 57.05, 9.92, false},  {"ODE1", 55.40, 10.39, false},
    {"TUK1", 60.45, 22.27, false}, {"OUL1", 65.01, 25.47, false},
    {"UME1", 63.83, 20.26, false}, {"LUL1", 65.58, 22.15, false},
    {"HAM1", 53.55, 9.99, true},   {"AMS1", 52.37, 4.90, true},
    {"LON1", 51.51, -0.13, true},  {"LON2", 51.50, -0.08, false},
    {"GVA1", 46.20, 6.14, true},   {"FRA1", 50.11, 8.68, true},
    {"NYC1", 40.71, -74.01, true}, {"ASH1", 39.04, -77.49, false},
    {"TLL1", 59.44, 24.75, false}, {"RIG1", 56.95, 24.11, false},
    {"KUN1", 54.90, 23.90, false},
};

// Backbone adjacency (indices into k_sites); each becomes a duplex link.
constexpr std::pair<int, int> k_adjacency[] = {
    {0, 1},   {0, 12},  {0, 13},  {0, 20},  {1, 15},  {2, 3},   {2, 11},  {2, 18},
    {2, 6},   {3, 5},   {4, 5},   {4, 9},   {4, 10},  {4, 2},   {6, 7},   {6, 16},
    {6, 28},  {7, 17},  {8, 22},  {8, 26},  {9, 18},  {10, 11}, {11, 12}, {13, 14},
    {14, 15}, {16, 17}, {17, 19}, {18, 19}, {20, 21}, {20, 25}, {21, 22}, {21, 25},
    {22, 23}, {22, 26}, {23, 24}, {24, 25}, {26, 27}, {28, 29}, {29, 30}, {12, 0},
    {5, 9},   {13, 15}, {3, 18},  {23, 26}, {0, 2},
};
} // namespace

SyntheticNetwork make_nordunet_like(std::size_t service_chains, std::uint64_t seed) {
    SyntheticTopology topo;
    auto& topology = topo.topology;
    for (const auto& site : k_sites) {
        const auto router = topology.add_router(site.name);
        topology.set_coordinate(router, {site.lat, site.lng});
        if (site.edge) topo.edge_routers.push_back(router);
    }
    std::vector<std::size_t> interface_counter(std::size(k_sites), 0);
    std::vector<std::vector<bool>> seen(std::size(k_sites),
                                        std::vector<bool>(std::size(k_sites), false));
    for (const auto& [a, b] : k_adjacency) {
        if (a == b || seen[a][b]) continue;
        seen[a][b] = seen[b][a] = true;
        topology.add_duplex(static_cast<RouterId>(a),
                            "ge-" + std::to_string(interface_counter[a]++),
                            static_cast<RouterId>(b),
                            "ge-" + std::to_string(interface_counter[b]++));
    }
    topology.distances_from_coordinates();

    DataplaneOptions options;
    options.fast_failover = true;
    options.service_chains = service_chains;
    options.seed = seed;
    auto net = build_dataplane(std::move(topo), options);
    net.network.name = "nordunet-like";
    return net;
}

} // namespace aalwines::synthesis
