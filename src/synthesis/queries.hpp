#pragma once
// Query batteries for the benchmark harness: the same query shapes as the
// paper's Table 1 and §5 suite (reachability, waypointing, service-label
// routing, transparency, and the deliberately unspecific stress query),
// instantiated over a synthesized network's edge routers and labels.

#include <cstdint>
#include <string>
#include <vector>

#include "synthesis/dataplane.hpp"

namespace aalwines::synthesis {

struct QueryBatteryOptions {
    std::size_t count = 20;
    std::vector<std::uint64_t> failure_bounds = {0, 1, 2};
    std::uint64_t seed = 7;
    /// Include the `<smpls? ip> .* <. smpls ip> k` stress shape (the paper's
    /// slowest query; every router sequence is admitted).
    bool include_stress = true;
};

/// Generate `options.count` query strings over `net`.  Deterministic for a
/// fixed seed.  All queries parse against net.network.
[[nodiscard]] std::vector<std::string> make_query_battery(const SyntheticNetwork& net,
                                                          const QueryBatteryOptions& options = {});

/// The six Table-1-shaped queries for an operator network (used by
/// bench_table1); R1..R3 pick deterministic edge routers.
[[nodiscard]] std::vector<std::string> make_table1_queries(const SyntheticNetwork& net);

} // namespace aalwines::synthesis
