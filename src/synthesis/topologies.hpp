#pragma once
// Synthetic topology generators.
//
// The paper evaluates on the Internet Topology Zoo and on NORDUnet's
// network, which we cannot redistribute; these deterministic generators
// produce topologies matched to the Zoo's size distribution and structural
// styles (rings, meshes, geometric graphs, two-level backbones).  Real Zoo
// GML files can still be loaded through io::read_gml.

#include <cstdint>
#include <vector>

#include "model/topology.hpp"

namespace aalwines::synthesis {

/// A generated topology plus the routers designated as network edges (the
/// endpoints between which label-switched paths are provisioned).
struct SyntheticTopology {
    Topology topology;
    std::vector<RouterId> edge_routers;
};

/// Ring of n routers; every router is an edge router.
[[nodiscard]] SyntheticTopology make_ring(std::size_t n);

/// w × h grid with toroidal coordinates off; border routers are edges.
[[nodiscard]] SyntheticTopology make_grid(std::size_t width, std::size_t height);

/// Waxman random geometric graph: n routers placed uniformly in a square,
/// connected with probability alpha * exp(-d / (beta * L)).  A spanning
/// tree guarantees connectivity.  Low-degree routers are edges.
[[nodiscard]] SyntheticTopology make_waxman(std::size_t n, double alpha, double beta,
                                            std::uint64_t seed);

/// Two-level backbone: a core ring of `core` routers, each with
/// `leaves_per_core` leaf routers attached (plus a few random core chords).
/// Leaves are the edge routers.
[[nodiscard]] SyntheticTopology make_backbone(std::size_t core,
                                              std::size_t leaves_per_core,
                                              std::uint64_t seed);

/// Leaf-spine Clos fabric: `spines` spine routers fully meshed with
/// `leaves` leaf routers (every leaf connects to every spine).  The leaves
/// are the edge routers; path diversity is maximal, which stresses the TE
/// groups and failover synthesis.
[[nodiscard]] SyntheticTopology make_clos(std::size_t spines, std::size_t leaves);

} // namespace aalwines::synthesis
