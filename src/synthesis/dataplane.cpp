#include "synthesis/dataplane.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <random>
#include <set>

namespace aalwines::synthesis {

namespace {

/// Dijkstra over directed links by distance; deterministic tie-breaking.
/// Returns the link sequence from `from` to `to`, avoiding `avoid` if set.
std::optional<std::vector<LinkId>> shortest_path(const Topology& topology, RouterId from,
                                                 RouterId to,
                                                 std::optional<LinkId> avoid) {
    constexpr auto inf = UINT64_MAX;
    std::vector<std::uint64_t> dist(topology.router_count(), inf);
    std::vector<LinkId> via(topology.router_count(), k_invalid_id);
    using Item = std::pair<std::uint64_t, RouterId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    dist[from] = 0;
    queue.push({0, from});
    while (!queue.empty()) {
        const auto [d, router] = queue.top();
        queue.pop();
        if (d != dist[router]) continue;
        if (router == to) break;
        for (const auto link_id : topology.out_links(router)) {
            if (avoid && *avoid == link_id) continue;
            const auto& link = topology.link(link_id);
            const auto nd = d + std::max<std::uint64_t>(1, link.distance);
            if (nd < dist[link.target]) {
                dist[link.target] = nd;
                via[link.target] = link_id;
                queue.push({nd, link.target});
            }
        }
    }
    if (dist[to] == inf) return std::nullopt;
    std::vector<LinkId> path;
    for (RouterId cursor = to; cursor != from;) {
        const auto link_id = via[cursor];
        path.push_back(link_id);
        cursor = topology.link(link_id).source;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

/// A hop whose outgoing link is candidate for fast-failover protection.
struct ProtectEntry {
    LinkId in_link = k_invalid_id;
    Label label = k_invalid_label;
    LinkId protected_link = k_invalid_id;
    std::vector<Op> primary_ops;
    Label result_top = k_invalid_label; ///< top of stack after primary_ops
};

struct Detour {
    std::vector<LinkId> links;
    std::vector<Label> tunnel_labels; ///< one per intermediate hop (size m-1)
};

} // namespace

SyntheticNetwork build_dataplane(SyntheticTopology topo, const DataplaneOptions& options) {
    SyntheticNetwork out;
    out.network.name = "synthetic";
    out.network.topology = std::move(topo.topology);
    out.edge_routers = std::move(topo.edge_routers);

    auto& topology = out.network.topology;
    auto& labels = out.network.labels;
    auto& routing = out.network.routing;
    std::mt19937_64 rng(options.seed);

    // External stubs: one per edge router; traffic enters through X -> r and
    // leaves through r -> X.  Stubs are sinks with no routing of their own.
    std::map<RouterId, LinkId> external_in, external_out;
    for (const auto router : out.edge_routers) {
        const auto stub = topology.add_router("X_" + topology.router_name(router));
        if (auto coord = topology.coordinate(router))
            topology.set_coordinate(stub, {coord->latitude + 0.02, coord->longitude + 0.02});
        const auto [to_stub, from_stub] = topology.add_duplex(router, "ext", stub, "host");
        external_out[router] = to_stub;
        external_in[router] = from_stub;
    }

    // One IP destination label per edge router.
    std::map<RouterId, Label> ip_of;
    for (const auto router : out.edge_routers) {
        const auto label = labels.add(LabelType::Ip, "ip_" + topology.router_name(router));
        ip_of[router] = label;
        out.ip_labels.push_back(label);
    }

    std::vector<ProtectEntry> protect;
    std::set<std::pair<LinkId, Label>> delivery_rules; // dedup (link, ip) deliveries

    auto add_delivery = [&](RouterId router, LinkId arrival_link, Label ip_label) {
        if (!delivery_rules.emplace(arrival_link, ip_label).second) return;
        routing.add_rule(arrival_link, ip_label, 1, external_out.at(router), {});
    };

    // ---- Label-switched paths between edge-router pairs (with PHP). ----
    std::vector<std::pair<RouterId, RouterId>> pairs;
    for (const auto a : out.edge_routers)
        for (const auto b : out.edge_routers)
            if (a != b) pairs.emplace_back(a, b);
    std::shuffle(pairs.begin(), pairs.end(), rng);
    if (pairs.size() > options.max_lsp_pairs) pairs.resize(options.max_lsp_pairs);

    std::size_t lsp_index = 0;
    for (const auto& [a, b] : pairs) {
        const auto path = shortest_path(topology, a, b, std::nullopt);
        if (!path || path->empty()) continue;
        const auto& links = *path;
        const auto n = links.size();
        const auto ip_b = ip_of.at(b);
        const auto in0 = external_in.at(a);

        if (n == 1) {
            // Adjacent: plain IP forwarding, no label.
            routing.add_rule(in0, ip_b, 1, links[0], {});
            protect.push_back({in0, ip_b, links[0], {}, ip_b});
        } else {
            // Per-hop labels l<lsp>_<i>, bottom-of-stack type (they sit
            // directly on the IP label).
            std::vector<Label> hop_labels;
            for (std::size_t i = 0; i + 1 < n; ++i)
                hop_labels.push_back(labels.add(
                    LabelType::MplsBos,
                    "l" + std::to_string(lsp_index) + "_" + std::to_string(i)));
            // Ingress: push the first LSP label.
            routing.add_rule(in0, ip_b, 1, links[0], {Op::push(hop_labels[0])});
            protect.push_back({in0, ip_b, links[0], {Op::push(hop_labels[0])}, hop_labels[0]});
            // Transit swaps.
            for (std::size_t i = 1; i + 1 < n; ++i) {
                routing.add_rule(links[i - 1], hop_labels[i - 1], 1, links[i],
                                 {Op::swap(hop_labels[i])});
                protect.push_back({links[i - 1], hop_labels[i - 1], links[i],
                                   {Op::swap(hop_labels[i])}, hop_labels[i]});
            }
            // Penultimate-hop pop (PHP): the packet reaches b with plain IP.
            routing.add_rule(links[n - 2], hop_labels[n - 2], 1, links[n - 1], {Op::pop()});
            protect.push_back({links[n - 2], hop_labels[n - 2], links[n - 1],
                               {Op::pop()}, ip_b});
        }
        add_delivery(b, links[n - 1], ip_b);
        out.lsp_pairs.emplace_back(a, b);
        ++lsp_index;
    }

    // ---- Service-label chains (per-hop smpls swaps; label stays on exit). ----
    if (options.service_chains > 0 && out.edge_routers.size() >= 2) {
        std::uniform_int_distribution<std::size_t> pick(0, out.edge_routers.size() - 1);
        for (std::size_t c = 0; c < options.service_chains; ++c) {
            const auto a = out.edge_routers[pick(rng)];
            RouterId b = a;
            for (int tries = 0; tries < 16 && b == a; ++tries)
                b = out.edge_routers[pick(rng)];
            if (b == a) continue;
            const auto path = shortest_path(topology, a, b, std::nullopt);
            if (!path || path->empty()) continue;
            const auto& links = *path;
            const auto n = links.size();
            std::vector<Label> chain_labels; // s_0 .. s_n (arrival at hop i with s_i)
            for (std::size_t i = 0; i <= n; ++i)
                chain_labels.push_back(labels.add(
                    LabelType::MplsBos,
                    "svc" + std::to_string(c) + "_" + std::to_string(i)));
            out.service_labels.push_back(chain_labels[0]);
            out.service_pairs.emplace_back(a, b);
            // Ingress swap.
            routing.add_rule(external_in.at(a), chain_labels[0], 1, links[0],
                             {Op::swap(chain_labels[1])});
            protect.push_back({external_in.at(a), chain_labels[0], links[0],
                               {Op::swap(chain_labels[1])}, chain_labels[1]});
            // Transit swaps.
            for (std::size_t i = 1; i < n; ++i) {
                routing.add_rule(links[i - 1], chain_labels[i], 1, links[i],
                                 {Op::swap(chain_labels[i + 1])});
                protect.push_back({links[i - 1], chain_labels[i], links[i],
                                   {Op::swap(chain_labels[i + 1])}, chain_labels[i + 1]});
            }
            // Egress: hand the final label to the neighbouring network.
            routing.add_rule(links[n - 1], chain_labels[n], 1, external_out.at(b), {});
        }
    }

    // ---- Fast-failover: facility-backup tunnels around protected links. ----
    if (options.fast_failover) {
        // Detours (and their shared tunnel labels) are cached per protected
        // link and per tunnel-label stratum: a tunnel pushed onto an MPLS
        // stack uses plain labels, one pushed onto bare IP needs the
        // bottom-of-stack bit.
        std::map<std::pair<LinkId, bool>, std::optional<Detour>> detours;
        std::set<std::pair<LinkId, Label>> continuations_done;

        auto detour_for = [&](LinkId protected_link, bool on_ip) -> const std::optional<Detour>& {
            const auto key = std::make_pair(protected_link, on_ip);
            if (auto it = detours.find(key); it != detours.end()) return it->second;
            const auto& link = topology.link(protected_link);
            auto path = shortest_path(topology, link.source, link.target, protected_link);
            if (!path) return detours.emplace(key, std::nullopt).first->second;
            Detour detour;
            detour.links = std::move(*path);
            const auto m = detour.links.size();
            const auto stratum = on_ip ? LabelType::MplsBos : LabelType::Mpls;
            for (std::size_t j = 0; j + 1 < m; ++j)
                detour.tunnel_labels.push_back(labels.add(
                    stratum, std::string("fr") + (on_ip ? "b" : "m") +
                                 std::to_string(protected_link) + "_" + std::to_string(j)));
            // Shared tunnel forwarding: swap along the detour, pop at the
            // penultimate detour hop (the packet re-emerges at t(e) with the
            // label the primary path would have delivered).
            for (std::size_t j = 1; j + 1 < m; ++j)
                routing.add_rule(detour.links[j - 1], detour.tunnel_labels[j - 1], 1,
                                 detour.links[j], {Op::swap(detour.tunnel_labels[j])});
            if (m >= 2)
                routing.add_rule(detour.links[m - 2], detour.tunnel_labels[m - 2], 1,
                                 detour.links[m - 1], {Op::pop()});
            return detours.emplace(key, std::move(detour)).first->second;
        };

        struct Continuation {
            LinkId arrival_link;
            Label label;
            LinkId copied_from;
        };
        std::vector<Continuation> continuations;

        for (const auto& entry : protect) {
            const bool on_ip = labels.type_of(entry.result_top) == LabelType::Ip;
            const auto& detour = detour_for(entry.protected_link, on_ip);
            if (!detour) continue;
            // Priority-2 rule: apply the primary rewrite, then enter the
            // tunnel (unless the detour is a single parallel link).
            auto ops = entry.primary_ops;
            if (detour->links.size() >= 2) ops.push_back(Op::push(detour->tunnel_labels[0]));
            routing.add_rule(entry.in_link, entry.label, 2, detour->links.front(),
                             std::move(ops));
            // The packet re-enters the primary path at t(e) via the last
            // detour link; whatever t(e) does with (protected_link,
            // result_top) it must also do for the detour arrival.
            continuations.push_back(
                {detour->links.back(), entry.result_top, entry.protected_link});
        }

        for (const auto& continuation : continuations) {
            if (!continuations_done
                     .emplace(continuation.arrival_link, continuation.label)
                     .second)
                continue;
            const auto* groups =
                routing.entry(continuation.copied_from, continuation.label);
            if (groups == nullptr) continue;
            // Deep-copy now; add_rule may invalidate the entry pointer.
            const RoutingEntry copied = *groups;
            for (std::size_t priority = 0; priority < copied.size(); ++priority)
                for (const auto& rule : copied[priority])
                    routing.add_rule(continuation.arrival_link, continuation.label,
                                     static_cast<std::uint32_t>(priority + 1),
                                     rule.out_link, rule.ops);
        }
    }

    routing.validate(topology);
    return out;
}

std::string exit_atom(const SyntheticNetwork& net, RouterId edge) {
    const auto& name = net.network.topology.router_name(edge);
    return "[" + name + "#X_" + name + "]";
}

std::string all_exits_atom(const SyntheticNetwork& net) {
    std::string atom = "[";
    bool first = true;
    for (const auto edge : net.edge_routers) {
        const auto& name = net.network.topology.router_name(edge);
        if (!first) atom += ", ";
        first = false;
        atom += name + "#X_" + name;
    }
    return atom + "]";
}

Network make_figure1_network() {
    Network network;
    network.name = "figure1";
    auto& topology = network.topology;
    auto& labels = network.labels;
    auto& routing = network.routing;

    const auto v0 = topology.add_router("v0");
    const auto v1 = topology.add_router("v1");
    const auto v2 = topology.add_router("v2");
    const auto v3 = topology.add_router("v3");
    const auto v4 = topology.add_router("v4");
    const auto src = topology.add_router("src"); // outside, feeds e0
    const auto dst = topology.add_router("dst"); // outside, receives e7

    auto link = [&](RouterId a, std::string_view ia, RouterId b, std::string_view ib) {
        return topology.add_link(a, topology.add_interface(a, ia), b,
                                 topology.add_interface(b, ib));
    };
    const auto e0 = link(src, "out", v0, "e0");
    const auto e1 = link(v0, "e1", v2, "in1");
    const auto e2 = link(v0, "e2", v1, "in2");
    const auto e3 = link(v1, "e3", v3, "in3");
    const auto e4 = link(v2, "e4", v3, "in4");
    const auto e5 = link(v2, "e5", v4, "in5");
    const auto e6 = link(v4, "e6", v3, "in6");
    const auto e7 = link(v3, "e7", dst, "in7");

    const auto ip1 = labels.add(LabelType::Ip, "ip1");
    const auto s10 = labels.add(LabelType::MplsBos, "10");
    const auto s11 = labels.add(LabelType::MplsBos, "11");
    const auto s20 = labels.add(LabelType::MplsBos, "20");
    const auto s21 = labels.add(LabelType::MplsBos, "21");
    const auto m30 = labels.add(LabelType::Mpls, "30");
    const auto s40 = labels.add(LabelType::MplsBos, "40");
    const auto s41 = labels.add(LabelType::MplsBos, "41");
    const auto s42 = labels.add(LabelType::MplsBos, "42");
    const auto s43 = labels.add(LabelType::MplsBos, "43");
    const auto s44 = labels.add(LabelType::MplsBos, "44");

    // Figure 1b, row by row.
    routing.add_rule(e0, ip1, 1, e1, {Op::push(s20)});
    routing.add_rule(e0, ip1, 1, e2, {Op::push(s10)});
    routing.add_rule(e0, s40, 1, e1, {Op::swap(s41)});
    routing.add_rule(e2, s10, 1, e3, {Op::swap(s11)});
    routing.add_rule(e1, s20, 1, e4, {Op::swap(s21)});
    routing.add_rule(e1, s41, 1, e5, {Op::swap(s42)});
    routing.add_rule(e1, s20, 2, e5, {Op::swap(s21), Op::push(m30)});
    routing.add_rule(e3, s11, 1, e7, {Op::pop()});
    routing.add_rule(e4, s21, 1, e7, {Op::pop()});
    routing.add_rule(e6, s43, 1, e7, {Op::swap(s44)});
    routing.add_rule(e6, s21, 1, e7, {Op::pop()});
    routing.add_rule(e5, m30, 1, e6, {Op::pop()});
    routing.add_rule(e5, s42, 1, e6, {Op::swap(s43)});

    routing.validate(topology);
    return network;
}

} // namespace aalwines::synthesis
