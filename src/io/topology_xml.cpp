#include <charconv>

#include "io/formats.hpp"
#include "xml/xml.hpp"

namespace aalwines::io {

namespace {
std::uint64_t parse_u64_attr(std::string_view text, std::uint64_t fallback) {
    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) return fallback;
    return value;
}

double parse_coordinate_attr(std::string_view text, const char* attribute) {
    // std::stod would throw std::invalid_argument/out_of_range on malformed
    // input; coordinates come straight from user files, so report through
    // model_error instead.
    double value = 0.0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size())
        throw model_error("invalid " + std::string(attribute) + " coordinate '" +
                          std::string(text) + "'");
    return value;
}
} // namespace

Topology read_topology_xml(std::string_view document, std::string* name) {
    const auto root = xml::parse(document);
    if (root.name != "network")
        throw model_error("topology document root must be <network>, got <" + root.name + ">");
    if (name != nullptr) {
        if (auto network_name = root.attr("name")) *name = std::string(*network_name);
        else name->clear();
    }

    Topology topology;
    if (const auto* routers = root.first_child("routers")) {
        for (const auto* router_el : routers->children_named("router")) {
            const auto router = topology.add_router(router_el->required_attr("name"));
            if (const auto* interfaces = router_el->first_child("interfaces"))
                for (const auto* iface : interfaces->children_named("interface"))
                    topology.add_interface(router, iface->required_attr("name"));
            const auto lat = router_el->attr("lat");
            const auto lng = router_el->attr("lng");
            if (lat && lng) {
                Coordinate coord;
                coord.latitude = parse_coordinate_attr(*lat, "lat");
                coord.longitude = parse_coordinate_attr(*lng, "lng");
                topology.set_coordinate(router, coord);
            }
        }
    }
    if (const auto* links = root.first_child("links")) {
        for (const auto* sides : links->children_named("sides")) {
            const auto ends = sides->children_named("shared_interface");
            if (ends.size() != 2)
                throw model_error("<sides> must contain exactly two <shared_interface>");
            const auto router_a = topology.find_router(ends[0]->required_attr("router"));
            const auto router_b = topology.find_router(ends[1]->required_attr("router"));
            if (!router_a || !router_b)
                throw model_error("<shared_interface> references an unknown router");
            std::uint64_t distance = 1;
            if (auto d = sides->attr("distance")) distance = parse_u64_attr(*d, 1);
            topology.add_duplex(*router_a, ends[0]->required_attr("interface"), *router_b,
                                ends[1]->required_attr("interface"), distance);
        }
    }
    return topology;
}

std::string write_topology_xml(const Topology& topology, std::string_view name) {
    xml::Element root;
    root.name = "network";
    if (!name.empty()) root.attributes.emplace_back("name", std::string(name));

    xml::Element routers;
    routers.name = "routers";
    for (RouterId r = 0; r < topology.router_count(); ++r) {
        xml::Element router;
        router.name = "router";
        router.attributes.emplace_back("name", topology.router_name(r));
        if (auto coord = topology.coordinate(r)) {
            router.attributes.emplace_back("lat", std::to_string(coord->latitude));
            router.attributes.emplace_back("lng", std::to_string(coord->longitude));
        }
        xml::Element interfaces;
        interfaces.name = "interfaces";
        for (InterfaceId i = 0; i < topology.interface_count(); ++i) {
            if (topology.interface(i).router != r) continue;
            xml::Element iface;
            iface.name = "interface";
            iface.attributes.emplace_back("name", topology.interface(i).name);
            interfaces.children.push_back(std::move(iface));
        }
        router.children.push_back(std::move(interfaces));
        routers.children.push_back(std::move(router));
    }
    root.children.push_back(std::move(routers));

    // Emit each duplex pair once: keep the direction with the smaller id
    // whose reverse (same interfaces, swapped) exists with a larger id.
    xml::Element links;
    links.name = "links";
    for (const auto& link : topology.links()) {
        bool is_canonical = true;
        for (const auto& other : topology.links()) {
            if (other.source_interface == link.target_interface &&
                other.target_interface == link.source_interface &&
                other.id < link.id) {
                is_canonical = false;
                break;
            }
        }
        if (!is_canonical) continue;
        xml::Element sides;
        sides.name = "sides";
        sides.attributes.emplace_back("distance", std::to_string(link.distance));
        xml::Element a;
        a.name = "shared_interface";
        a.attributes.emplace_back("interface",
                                  topology.interface(link.source_interface).name);
        a.attributes.emplace_back("router", topology.router_name(link.source));
        xml::Element b;
        b.name = "shared_interface";
        b.attributes.emplace_back("interface",
                                  topology.interface(link.target_interface).name);
        b.attributes.emplace_back("router", topology.router_name(link.target));
        sides.children.push_back(std::move(a));
        sides.children.push_back(std::move(b));
        links.children.push_back(std::move(sides));
    }
    root.children.push_back(std::move(links));
    return xml::write(root);
}

Network read_network_xml(std::string_view topology_document,
                         std::string_view routing_document) {
    Network network;
    network.topology = read_topology_xml(topology_document, &network.name);
    network.routing = read_routing_xml(routing_document, network.topology, network.labels);
    return network;
}

} // namespace aalwines::io
