#pragma once
// Standalone HTML visualisation of verification results — this repository's
// substitute for the paper's web GUI (Figure 2): the topology drawn from
// router coordinates, witness paths highlighted hop by hop, and the
// operations each router applied, in a single self-contained file.

#include <string>
#include <vector>

#include "verify/engine.hpp"

namespace aalwines::io {

struct ReportEntry {
    std::string query_text;
    verify::VerifyResult result;
};

/// Render a self-contained HTML document (inline SVG + CSS, no external
/// resources).  Router positions come from coordinates when present,
/// otherwise from a deterministic circular layout.
[[nodiscard]] std::string write_html_report(const Network& network,
                                            const std::vector<ReportEntry>& entries);

} // namespace aalwines::io
