#pragma once
// IS-IS dataplane ingestion (paper, Appendix A.1).
//
// The paper's tool reconstructs a network from per-router XML exports of a
// Juniper-style IS-IS deployment:
//
//     show isis adjacency detail | display xml           -> adjacency doc
//     show route forwarding-table family mpls extensive | display xml
//                                                        -> forwarding doc
//     show pfe next-hop | display xml                    -> PFE next-hop doc
//
// plus a *mapping file* with one line per logical routing entity:
//
//     <aliases>:<adj.xml>:<route-ft.xml>:<pfe.xml>
//     192.0.0.1,R1:R1-adj.xml:R1-route.xml:R1-pfe.xml
//     192.0.0.2,10.10.0.2,E1
//
// Edge routers omit the file references; they act as sink nodes with an
// empty routing table.  The first alias of each line is the canonical
// router name; any alias may be used by neighbours' adjacency documents.
//
// Since vendor exports cannot be redistributed, this module defines (and
// documents here) a faithful simplified schema with the same structure:
//
// adjacency document:
//   <isis-adjacency-information>
//     <isis-adjacency>
//       <interface-name>et-3/0/0.2</interface-name>
//       <system-name>R3</system-name>         (neighbour, any alias)
//       <adjacency-state>Up</adjacency-state> (non-Up adjacencies skipped)
//     </isis-adjacency>...
//   </isis-adjacency-information>
//
// forwarding document (route table; in-label + in-interface keyed):
//   <forwarding-table-information>
//     <rt-entry>
//       <label>300292</label>                  (or <label type="ip">ip_R4</label>)
//       <incoming-interface>ae1.11</incoming-interface>
//       <nh weight="1"><via>et-3/0/0.2</via><nh-index>1048574</nh-index></nh>...
//     </rt-entry>...
//   </forwarding-table-information>
// `weight` orders the next-hops into TE groups (1 = primary); several <nh>
// with the same weight form one group.
//
// PFE document (next-hop index -> MPLS operations):
//   <pfe-next-hop-information>
//     <next-hop><nh-index>1048574</nh-index>
//       <operations>Swap 300293</operations></next-hop>...
//   </pfe-next-hop-information>
// Operations grammar: comma-separated list of `Swap L`, `Push L`, `Pop`;
// labels may carry an `s` prefix for the bottom-of-stack stratum and an
// `ip ` prefix for IP destinations, matching the paper's conventions.

#include <string>
#include <vector>

#include "model/routing.hpp"

namespace aalwines::io {

/// One logical routing entity from the mapping file.
struct IsisMappingEntry {
    std::vector<std::string> aliases;   ///< first is the canonical name
    std::string adjacency_file;         ///< empty for edge routers
    std::string route_file;
    std::string pfe_file;

    [[nodiscard]] bool is_edge() const { return adjacency_file.empty(); }
};

/// Parse the mapping file (see above).  Blank lines and '#' comments are
/// skipped.  Throws parse_error on malformed lines.
[[nodiscard]] std::vector<IsisMappingEntry> parse_isis_mapping(std::string_view text);

/// A mapping entry with its referenced documents already loaded.
struct IsisRouterDocuments {
    IsisMappingEntry entry;
    std::string adjacency_xml;
    std::string route_xml;
    std::string pfe_xml;
};

/// Reconstruct the network from per-router IS-IS exports.  Adjacencies are
/// matched pairwise (router A's adjacency on interface i toward B pairs
/// with B's adjacency toward A); edge routers receive one automatic
/// interface per neighbour adjacency pointing at them.
[[nodiscard]] Network read_isis(const std::vector<IsisRouterDocuments>& routers);

} // namespace aalwines::io
