#pragma once
// Input/output formats (paper, Appendix A):
//   * vendor-agnostic topology XML (topo.xml)
//   * vendor-agnostic routing XML (route.xml)
//   * router location JSON (Appendix A.2)
//   * Internet Topology Zoo GML (read-only)

#include <string>
#include <string_view>

#include "model/routing.hpp"

namespace aalwines::io {

/// Parse a topo.xml document into a Topology.
///
///   <network name="...">
///     <routers>
///       <router name="R0">
///         <interfaces><interface name="ae1.11"/>...</interfaces>
///       </router>...
///     </routers>
///     <links>
///       <sides distance="12">
///         <shared_interface interface="et-3/0/0.2" router="R0"/>
///         <shared_interface interface="et-1/3/0.2" router="R3"/>
///       </sides>...
///     </links>
///   </network>
///
/// Every <sides> pair becomes two directed links (one per direction).
[[nodiscard]] Topology read_topology_xml(std::string_view document, std::string* name = nullptr);

[[nodiscard]] std::string write_topology_xml(const Topology& topology,
                                             std::string_view name);

/// Parse a route.xml document against `topology`, filling `labels` and
/// returning the routing table.
///
///   <routes>
///     <routings>
///       <routing for="R0">
///         <destinations>
///           <destination from="ae1.11" label="300292" type="smpls">
///             <te-group priority="1">
///               <route to="ae5.0">
///                 <actions>
///                   <action op="swap" label="300293" type="smpls"/>
///                 </actions>
///               </route>
///             </te-group>...
///           </destination>...
/// `type` is one of ip|mpls|smpls (default mpls); `op` is push|swap|pop.
[[nodiscard]] RoutingTable read_routing_xml(std::string_view document,
                                            const Topology& topology, LabelTable& labels);

[[nodiscard]] std::string write_routing_xml(const Network& network);

/// Read both documents into a complete network.
[[nodiscard]] Network read_network_xml(std::string_view topology_document,
                                       std::string_view routing_document);

/// Router locations: { "R0": {"lat": 46.5, "lng": 7.3}, ... }.  Unknown
/// router names are ignored; returns the number of coordinates applied.
std::size_t apply_locations_json(std::string_view document, Topology& topology);

[[nodiscard]] std::string write_locations_json(const Topology& topology);

/// Parse a Topology Zoo GML document.  Nodes become routers (named by their
/// `label`, falling back to "N<id>"); each edge becomes a duplex link with
/// automatically numbered interfaces; `Latitude`/`Longitude` attributes
/// become coordinates and link distances.
[[nodiscard]] Topology read_gml(std::string_view document, std::string* name = nullptr);

/// Write a topology as Topology-Zoo-style GML (nodes with labels and
/// coordinates, one edge per duplex link pair).
[[nodiscard]] std::string write_gml(const Topology& topology, std::string_view name);

} // namespace aalwines::io
