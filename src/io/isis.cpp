#include "io/isis.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.hpp"
#include "xml/xml.hpp"

namespace aalwines::io {

namespace {

std::string trim(std::string_view text) {
    std::size_t begin = 0, end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
    return std::string(text.substr(begin, end - begin));
}

std::vector<std::string> split(std::string_view text, char separator) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == separator) {
            out.push_back(trim(text.substr(start, i - start)));
            start = i + 1;
        }
    }
    return out;
}

/// Label naming conventions shared with the query language: `sX` is the
/// bottom-of-stack label X, `ip ...`/`ip_...` an IP destination, anything
/// else a plain MPLS label.  An explicit `type` attribute wins.
Label parse_isis_label(LabelTable& labels, std::string_view type_attr,
                       std::string_view name) {
    if (type_attr == "ip") return labels.add(LabelType::Ip, name);
    if (type_attr == "smpls") return labels.add(LabelType::MplsBos, name);
    if (type_attr == "mpls") return labels.add(LabelType::Mpls, name);
    if (!type_attr.empty())
        throw model_error("isis: unknown label type '" + std::string(type_attr) + "'");
    if (name.rfind("ip", 0) == 0) return labels.add(LabelType::Ip, name);
    if (name.size() > 1 && name.front() == 's' &&
        std::all_of(name.begin() + 1, name.end(),
                    [](char c) { return std::isdigit(static_cast<unsigned char>(c)); }))
        return labels.add(LabelType::MplsBos, name.substr(1));
    return labels.add(LabelType::Mpls, name);
}

std::vector<Op> parse_operations(LabelTable& labels, std::string_view text) {
    std::vector<Op> ops;
    for (const auto& piece : split(text, ',')) {
        if (piece.empty()) continue;
        if (piece == "Pop" || piece == "pop") {
            ops.push_back(Op::pop());
            continue;
        }
        const auto space = piece.find(' ');
        if (space == std::string::npos)
            throw model_error("isis: malformed operation '" + piece + "'");
        const auto verb = piece.substr(0, space);
        const auto argument = trim(std::string_view(piece).substr(space + 1));
        const auto label = parse_isis_label(labels, "", argument);
        if (verb == "Swap" || verb == "swap") ops.push_back(Op::swap(label));
        else if (verb == "Push" || verb == "push") ops.push_back(Op::push(label));
        else throw model_error("isis: unknown operation verb '" + verb + "'");
    }
    return ops;
}

struct Adjacency {
    std::string interface_name;
    std::string neighbor; ///< any alias
    bool consumed = false;
};

} // namespace

std::vector<IsisMappingEntry> parse_isis_mapping(std::string_view text) {
    std::vector<IsisMappingEntry> entries;
    unsigned line_number = 0;
    for (const auto& raw_line : split(text, '\n')) {
        ++line_number;
        const auto line = trim(raw_line);
        if (line.empty() || line.front() == '#') continue;
        const auto fields = split(line, ':');
        if (fields.size() != 1 && fields.size() != 4)
            throw parse_error("isis mapping: expected 1 or 4 ':'-separated fields",
                              {line_number, 1});
        IsisMappingEntry entry;
        entry.aliases = split(fields[0], ',');
        if (entry.aliases.empty() || entry.aliases.front().empty())
            throw parse_error("isis mapping: missing router aliases", {line_number, 1});
        if (fields.size() == 4) {
            entry.adjacency_file = fields[1];
            entry.route_file = fields[2];
            entry.pfe_file = fields[3];
            if (entry.adjacency_file.empty() || entry.route_file.empty() ||
                entry.pfe_file.empty())
                throw parse_error("isis mapping: empty document reference",
                                  {line_number, 1});
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

Network read_isis(const std::vector<IsisRouterDocuments>& routers) {
    Network network;
    network.name = "isis-import";
    auto& topology = network.topology;

    // Routers and the alias table.
    std::map<std::string, RouterId> by_alias;
    for (const auto& doc : routers) {
        const auto router = topology.add_router(doc.entry.aliases.front());
        for (const auto& alias : doc.entry.aliases) {
            if (!by_alias.emplace(alias, router).second)
                throw model_error("isis: alias '" + alias + "' is not unique");
        }
    }

    // Adjacencies per router.
    std::vector<std::vector<Adjacency>> adjacencies(routers.size());
    for (std::size_t i = 0; i < routers.size(); ++i) {
        if (routers[i].entry.is_edge()) continue;
        const auto root = xml::parse(routers[i].adjacency_xml);
        if (root.name != "isis-adjacency-information")
            throw model_error("isis: adjacency document root must be "
                              "<isis-adjacency-information>");
        for (const auto* adj : root.children_named("isis-adjacency")) {
            const auto* state = adj->first_child("adjacency-state");
            if (state != nullptr && trim(state->text) != "Up") continue;
            const auto* iface = adj->first_child("interface-name");
            const auto* neighbor = adj->first_child("system-name");
            if (iface == nullptr || neighbor == nullptr)
                throw model_error("isis: adjacency without interface or neighbour");
            if (!by_alias.contains(trim(neighbor->text)))
                throw model_error("isis: adjacency toward unknown system '" +
                                  trim(neighbor->text) + "'");
            adjacencies[i].push_back({trim(iface->text), trim(neighbor->text), false});
        }
    }

    // Pair adjacencies into duplex links.
    std::map<std::string, RouterId> canonical = by_alias;
    for (std::size_t i = 0; i < routers.size(); ++i) {
        const auto router_i = static_cast<RouterId>(i);
        for (auto& adjacency : adjacencies[i]) {
            if (adjacency.consumed) continue;
            adjacency.consumed = true;
            const auto neighbor_it = by_alias.find(adjacency.neighbor);
            AALWINES_CHECK(neighbor_it != by_alias.end(),
                           "isis: adjacency toward unknown system '" +
                               adjacency.neighbor + "'");
            const auto neighbor_id = neighbor_it->second;
            if (routers[neighbor_id].entry.is_edge()) {
                // Edge routers export nothing; synthesize their interface.
                topology.add_duplex(router_i, adjacency.interface_name, neighbor_id,
                                    "to_" + topology.router_name(router_i) + "_" +
                                        adjacency.interface_name);
                continue;
            }
            // Find the reciprocal, unconsumed adjacency on the neighbour.
            Adjacency* reciprocal = nullptr;
            for (auto& candidate : adjacencies[neighbor_id]) {
                if (candidate.consumed) continue;
                const auto candidate_it = by_alias.find(candidate.neighbor);
                AALWINES_CHECK(candidate_it != by_alias.end(),
                               "isis: adjacency toward unknown system '" +
                                   candidate.neighbor + "'");
                if (candidate_it->second != router_i) continue;
                reciprocal = &candidate;
                break;
            }
            if (reciprocal == nullptr)
                throw model_error("isis: adjacency from '" +
                                  topology.router_name(router_i) + "' via '" +
                                  adjacency.interface_name + "' toward '" +
                                  adjacency.neighbor + "' has no reciprocal entry");
            reciprocal->consumed = true;
            topology.add_duplex(router_i, adjacency.interface_name, neighbor_id,
                                reciprocal->interface_name);
        }
    }

    // PFE next-hop operation tables, then the forwarding tables.
    for (std::size_t i = 0; i < routers.size(); ++i) {
        if (routers[i].entry.is_edge()) continue;
        const auto router_i = static_cast<RouterId>(i);

        std::map<std::string, std::vector<Op>> ops_by_index;
        {
            const auto root = xml::parse(routers[i].pfe_xml);
            if (root.name != "pfe-next-hop-information")
                throw model_error("isis: PFE document root must be "
                                  "<pfe-next-hop-information>");
            for (const auto* nh : root.children_named("next-hop")) {
                const auto* index = nh->first_child("nh-index");
                const auto* operations = nh->first_child("operations");
                if (index == nullptr)
                    throw model_error("isis: PFE next-hop without nh-index");
                ops_by_index.emplace(
                    trim(index->text),
                    operations != nullptr ? parse_operations(network.labels,
                                                             trim(operations->text))
                                          : std::vector<Op>{});
            }
        }

        const auto root = xml::parse(routers[i].route_xml);
        if (root.name != "forwarding-table-information")
            throw model_error("isis: forwarding document root must be "
                              "<forwarding-table-information>");
        for (const auto* entry : root.children_named("rt-entry")) {
            const auto* label_el = entry->first_child("label");
            const auto* in_iface = entry->first_child("incoming-interface");
            if (label_el == nullptr || in_iface == nullptr)
                throw model_error("isis: rt-entry without label or incoming-interface");
            const auto label = parse_isis_label(
                network.labels, label_el->attr("type").value_or(""), trim(label_el->text));
            const auto in_link = topology.in_link_through(router_i, trim(in_iface->text));
            if (!in_link)
                throw model_error("isis: router '" + topology.router_name(router_i) +
                                  "' has no incoming link through '" +
                                  trim(in_iface->text) + "'");
            for (const auto* nh : entry->children_named("nh")) {
                const auto* via = nh->first_child("via");
                if (via == nullptr) throw model_error("isis: <nh> without <via>");
                const auto out_link =
                    topology.out_link_through(router_i, trim(via->text));
                if (!out_link)
                    throw model_error("isis: router '" + topology.router_name(router_i) +
                                      "' has no outgoing link through '" +
                                      trim(via->text) + "'");
                std::uint32_t priority = 1;
                if (auto weight = nh->attr("weight"))
                    priority = static_cast<std::uint32_t>(
                        std::strtoul(std::string(*weight).c_str(), nullptr, 10));
                std::vector<Op> ops;
                if (const auto* index = nh->first_child("nh-index")) {
                    auto it = ops_by_index.find(trim(index->text));
                    if (it == ops_by_index.end())
                        throw model_error("isis: nh-index '" + trim(index->text) +
                                          "' not present in the PFE document");
                    ops = it->second;
                }
                network.routing.add_rule(*in_link, label, priority, *out_link,
                                         std::move(ops));
            }
        }
    }

    network.routing.validate(topology);
    return network;
}

} // namespace aalwines::io
