#include "io/html_report.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>
#include <sstream>

namespace aalwines::io {

namespace {

struct Point {
    double x = 0, y = 0;
};

/// Router layout: equirectangular projection of the coordinates when
/// present, deterministic circle otherwise; normalised into the viewbox.
std::vector<Point> layout(const Topology& topology, double width, double height,
                          double margin) {
    const auto n = topology.router_count();
    std::vector<Point> points(n);
    bool any_coordinates = false;
    for (RouterId r = 0; r < n; ++r) {
        if (auto coord = topology.coordinate(r)) {
            points[r] = {coord->longitude, -coord->latitude}; // screen y grows down
            any_coordinates = true;
        }
    }
    if (!any_coordinates) {
        for (RouterId r = 0; r < n; ++r) {
            const double angle =
                2.0 * std::numbers::pi * static_cast<double>(r) / static_cast<double>(n);
            points[r] = {std::cos(angle), std::sin(angle)};
        }
    } else {
        // Routers without coordinates: park them on a small inner circle.
        for (RouterId r = 0; r < n; ++r) {
            if (topology.coordinate(r)) continue;
            const double angle =
                2.0 * std::numbers::pi * static_cast<double>(r) / static_cast<double>(n);
            points[r] = {0.1 * std::cos(angle), 0.1 * std::sin(angle)};
        }
    }
    double min_x = points[0].x, max_x = points[0].x;
    double min_y = points[0].y, max_y = points[0].y;
    for (const auto& p : points) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
    }
    const double span_x = std::max(1e-9, max_x - min_x);
    const double span_y = std::max(1e-9, max_y - min_y);
    for (auto& p : points) {
        p.x = margin + (p.x - min_x) / span_x * (width - 2 * margin);
        p.y = margin + (p.y - min_y) / span_y * (height - 2 * margin);
    }
    return points;
}

void escape_into(std::string& out, const std::string& text) {
    for (const char c : text) {
        switch (c) {
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '&': out += "&amp;"; break;
            default: out.push_back(c);
        }
    }
}

std::string escaped(const std::string& text) {
    std::string out;
    escape_into(out, text);
    return out;
}

/// The operation sequence applied between consecutive trace entries.
std::string ops_between(const Network& network, const TraceEntry& current,
                        const TraceEntry& next) {
    const auto* groups = network.routing.entry(current.link, current.header.back());
    if (groups == nullptr) return "?";
    for (const auto& group : *groups)
        for (const auto& rule : group) {
            if (rule.out_link != next.link) continue;
            const auto rewritten = apply_ops(network.labels, current.header, rule.ops);
            if (rewritten && *rewritten == next.header)
                return describe_ops(network.labels, rule.ops);
        }
    return "?";
}

void render_svg(std::string& out, const Network& network, const Trace* trace) {
    constexpr double width = 640, height = 420, margin = 36;
    const auto& topology = network.topology;
    const auto points = layout(topology, width, height, margin);

    std::set<LinkId> on_path;
    if (trace != nullptr)
        for (const auto& entry : trace->entries) on_path.insert(entry.link);

    std::ostringstream svg;
    svg << "<svg viewBox=\"0 0 " << width << " " << height << "\">\n";
    // Links (draw each duplex pair once unless directionality matters).
    for (const auto& link : topology.links()) {
        const auto& a = points[link.source];
        const auto& b = points[link.target];
        const bool highlighted = on_path.contains(link.id);
        svg << "<line x1=\"" << a.x << "\" y1=\"" << a.y << "\" x2=\"" << b.x
            << "\" y2=\"" << b.y << "\" class=\""
            << (highlighted ? "link path" : "link") << "\"/>\n";
    }
    // Path direction arrows: a dot at 2/3 of each traversed link.
    if (trace != nullptr) {
        for (const auto& entry : trace->entries) {
            const auto& link = topology.link(entry.link);
            const auto& a = points[link.source];
            const auto& b = points[link.target];
            svg << "<circle cx=\"" << (a.x + 2 * (b.x - a.x) / 3) << "\" cy=\""
                << (a.y + 2 * (b.y - a.y) / 3) << "\" r=\"4\" class=\"dir\"/>\n";
        }
    }
    // Routers.
    for (RouterId r = 0; r < topology.router_count(); ++r) {
        bool visited = false;
        if (trace != nullptr)
            for (const auto& entry : trace->entries) {
                const auto& link = topology.link(entry.link);
                if (link.source == r || link.target == r) visited = true;
            }
        svg << "<circle cx=\"" << points[r].x << "\" cy=\"" << points[r].y
            << "\" r=\"7\" class=\"" << (visited ? "router visited" : "router")
            << "\"/>\n";
        svg << "<text x=\"" << points[r].x + 9 << "\" y=\"" << points[r].y - 6
            << "\">" << escaped(topology.router_name(r)) << "</text>\n";
    }
    svg << "</svg>\n";
    out += svg.str();
}

} // namespace

std::string write_html_report(const Network& network,
                              const std::vector<ReportEntry>& entries) {
    std::string out;
    out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>AalWiNes — ";
    escape_into(out, network.name);
    out +=
        "</title>\n<style>\n"
        "body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:72rem;"
        "color:#1d2733}\n"
        "h1{font-size:1.4rem} h2{font-size:1.05rem;margin-top:2.2rem}\n"
        "svg{width:100%;height:auto;background:#f7f9fb;border:1px solid #dde4ea;"
        "border-radius:8px}\n"
        ".link{stroke:#b9c4cd;stroke-width:1.4}\n"
        ".link.path{stroke:#e2574c;stroke-width:3}\n"
        ".dir{fill:#e2574c}\n"
        ".router{fill:#3f6ea5;stroke:#fff;stroke-width:1.5}\n"
        ".router.visited{fill:#e2574c}\n"
        "svg text{font:11px system-ui,sans-serif;fill:#42505c}\n"
        ".answer{display:inline-block;padding:.1rem .55rem;border-radius:1rem;"
        "color:#fff;font-weight:600}\n"
        ".yes{background:#2e8b57}.no{background:#3f6ea5}.inconclusive{background:#c98a1b}\n"
        "table{border-collapse:collapse;margin:.8rem 0;width:100%}\n"
        "td,th{border:1px solid #dde4ea;padding:.35rem .6rem;text-align:left;"
        "font-size:.92em}\n"
        "code{background:#eef2f5;padding:.05rem .3rem;border-radius:4px}\n"
        ".meta{color:#5b6a77;font-size:.9em}\n"
        "</style></head><body>\n";

    out += "<h1>AalWiNes what-if analysis — ";
    escape_into(out, network.name);
    out += "</h1>\n<p class=\"meta\">" + std::to_string(network.topology.router_count()) +
           " routers, " + std::to_string(network.topology.link_count()) +
           " directed links, " + std::to_string(network.routing.rule_count()) +
           " forwarding rules, " + std::to_string(network.labels.size()) +
           " labels</p>\n";

    for (const auto& entry : entries) {
        out += "<h2><code>";
        escape_into(out, entry.query_text);
        out += "</code></h2>\n<p><span class=\"answer ";
        out += to_string(entry.result.answer);
        out += "\">";
        out += to_string(entry.result.answer);
        out += "</span>";
        if (!entry.result.weight.empty()) {
            out += " &nbsp;weight (";
            for (std::size_t i = 0; i < entry.result.weight.size(); ++i)
                out += (i ? ", " : "") + std::to_string(entry.result.weight[i]);
            out += ")";
        }
        out += " <span class=\"meta\">" + std::to_string(entry.result.stats.total_seconds) +
               "s</span></p>\n";
        if (!entry.result.note.empty()) {
            out += "<p class=\"meta\">";
            escape_into(out, entry.result.note);
            out += "</p>\n";
        }
        const Trace* trace =
            entry.result.trace.has_value() ? &*entry.result.trace : nullptr;
        render_svg(out, network, trace);
        const auto& witnesses = entry.result.witnesses;
        const auto render_table = [&](const Trace& t, std::size_t index) {
            out += "<table><tr><th>#</th><th>link</th><th>header</th><th>operations"
                   "</th></tr>\n";
            for (std::size_t i = 0; i < t.entries.size(); ++i) {
                out += "<tr><td>" + std::to_string(i + 1) + "</td><td>";
                escape_into(out, network.topology.describe_link(t.entries[i].link));
                out += "</td><td><code>";
                escape_into(out, display_header(network.labels, t.entries[i].header));
                out += "</code></td><td>";
                if (i + 1 < t.entries.size())
                    escape_into(out, ops_between(network, t.entries[i], t.entries[i + 1]));
                out += "</td></tr>\n";
            }
            out += "</table>\n";
            (void)index;
        };
        if (witnesses.size() > 1) {
            for (std::size_t w = 0; w < witnesses.size(); ++w) {
                out += "<p class=\"meta\">witness " + std::to_string(w + 1) + ":</p>\n";
                render_table(witnesses[w], w);
            }
        } else if (trace != nullptr) {
            render_table(*trace, 0);
        }
    }
    out += "</body></html>\n";
    return out;
}

} // namespace aalwines::io
