#pragma once
// Machine-readable result serialisation: the JSON shape the CLI emits and
// downstream tooling (the GUI the paper ships, dashboards, CI gates)
// consumes.  One object per verified query.

#include <string>

#include "json/json.hpp"
#include "verify/engine.hpp"
#include "verify/sweep.hpp"

namespace aalwines::io {

/// Serialise one verification outcome.
///
/// {
///   "query":   "<ip> [.#v0] .* [v3#.] <ip> 0",
///   "answer":  "yes" | "no" | "inconclusive",
///   "seconds": 0.0123,
///   "weight":  [5, 0],                  (weighted runs only)
///   "trace":   [ {"link": "v0.e1 -> v2.in1",
///                 "header": "s20 o ip1",
///                 "ops": "swap(s21)"}, ... ],
///   "note":    "...",                   (when present)
///   "stats":   { "pdaRules": 8, "pdaRulesBeforeReduction": 32,
///                "saturationIterations": 14, "usedUnderApproximation": false }
/// }
[[nodiscard]] std::string result_to_json(const Network& network,
                                         const std::string& query_text,
                                         const verify::VerifyResult& result,
                                         bool include_stats = false, int indent = 2);

/// Same, but the parsed json::Value (for embedding into larger documents).
[[nodiscard]] json::Value result_to_json_value(const Network& network,
                                               const std::string& query_text,
                                               const verify::VerifyResult& result,
                                               bool include_stats = false);

/// Compact health-matrix JSON for a sweep run: the axes, one small object
/// per cell (grid coordinates, answer, path, timing — plus weight/trace/
/// error when present), and the cross-cell sharing accounting.
///
/// {
///   "template":  "<ip> [.#{src}] .* [{dst}#.] <ip> {k}",
///   "pairs":     [["R1", "R2"], ...],
///   "budgets":   [0, 1],
///   "scenarios": ["baseline", "R1.e1 -> R2.in1", ...],
///   "cells":     [ {"pair": 0, "k": 0, "scenario": 0, "answer": "yes",
///                   "path": "cold" | "warm" | "reused", "seconds": 0.004}, ... ],
///   "stats":     { "cells": 40, "coldSaturations": 4, "reusedFrontiers": 30,
///                  "sharedSaturations": 6, "nfaCompiles": 2, "errors": 0,
///                  "seconds": 0.12 }
/// }
///
/// `include_stats` adds each cell's full per-phase stats object (the same
/// shape as result_to_json's "stats"); the sharing accounting in "stats" is
/// always present.
[[nodiscard]] json::Value sweep_to_json_value(const Network& network,
                                              const verify::SweepSpec& spec,
                                              const verify::SweepResult& sweep,
                                              bool include_stats = false);

} // namespace aalwines::io
