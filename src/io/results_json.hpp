#pragma once
// Machine-readable result serialisation: the JSON shape the CLI emits and
// downstream tooling (the GUI the paper ships, dashboards, CI gates)
// consumes.  One object per verified query.

#include <string>

#include "json/json.hpp"
#include "verify/engine.hpp"

namespace aalwines::io {

/// Serialise one verification outcome.
///
/// {
///   "query":   "<ip> [.#v0] .* [v3#.] <ip> 0",
///   "answer":  "yes" | "no" | "inconclusive",
///   "seconds": 0.0123,
///   "weight":  [5, 0],                  (weighted runs only)
///   "trace":   [ {"link": "v0.e1 -> v2.in1",
///                 "header": "s20 o ip1",
///                 "ops": "swap(s21)"}, ... ],
///   "note":    "...",                   (when present)
///   "stats":   { "pdaRules": 8, "pdaRulesBeforeReduction": 32,
///                "saturationIterations": 14, "usedUnderApproximation": false }
/// }
[[nodiscard]] std::string result_to_json(const Network& network,
                                         const std::string& query_text,
                                         const verify::VerifyResult& result,
                                         bool include_stats = false, int indent = 2);

/// Same, but the parsed json::Value (for embedding into larger documents).
[[nodiscard]] json::Value result_to_json_value(const Network& network,
                                               const std::string& query_text,
                                               const verify::VerifyResult& result,
                                               bool include_stats = false);

} // namespace aalwines::io
