#include "io/results_json.hpp"

namespace aalwines::io {

namespace {

/// The operation sequence the router applied between two consecutive trace
/// entries (lowest-priority-group match, as in the feasibility check).
std::string ops_between(const Network& network, const TraceEntry& current,
                        const TraceEntry& next) {
    const auto* groups = network.routing.entry(current.link, current.header.back());
    if (groups == nullptr) return "?";
    for (const auto& group : *groups) {
        for (const auto& rule : group) {
            if (rule.out_link != next.link) continue;
            const auto rewritten = apply_ops(network.labels, current.header, rule.ops);
            if (rewritten && *rewritten == next.header)
                return describe_ops(network.labels, rule.ops);
        }
    }
    return "?";
}

json::Value phase_to_json(const verify::PhaseStats& phase) {
    json::Object object;
    object.emplace("pdaRules", phase.pda_rules);
    object.emplace("pdaRulesBeforeReduction", phase.pda_rules_before_reduction);
    object.emplace("pdaStates", phase.pda_states);
    if (phase.pda_rules_expanded != 0) {
        object.emplace("pdaRulesExpanded", phase.pda_rules_expanded);
        object.emplace("pdaStatesExpanded", phase.pda_states_expanded);
    }
    if (phase.lazy_translation) {
        object.emplace("lazyTranslation", true);
        object.emplace("pdaRulesTotal", phase.pda_rules_total);
        object.emplace("pdaRulesMaterialized", phase.pda_rules_materialized);
        object.emplace("pdaStatesMaterialized", phase.pda_states_materialized);
    }
    object.emplace("saturationIterations", phase.saturation_iterations);
    object.emplace("automatonTransitions", phase.automaton_transitions);
    object.emplace("worklistRelaxations", phase.worklist_relaxations);
    object.emplace("peakWorklist", phase.peak_worklist);
    object.emplace("seconds", phase.seconds);
    // Wall-clock split of `seconds` by pipeline stage (dual/weighted
    // engines; zeros for moped/exact, which run their own pipelines).
    object.emplace("translateSeconds", phase.translate_seconds);
    object.emplace("reduceSeconds", phase.reduce_seconds);
    object.emplace("saturateSeconds", phase.saturate_seconds);
    object.emplace("acceptSeconds", phase.accept_seconds);
    object.emplace("witnessSeconds", phase.witness_seconds);
    if (phase.solver_threads > 1) {
        object.emplace("solverThreads", phase.solver_threads);
        object.emplace("parallelRounds", phase.parallel_rounds);
        object.emplace("parallelHandoffs", phase.parallel_handoffs);
        object.emplace("shardImbalance", phase.shard_imbalance);
    }
    if (phase.truncated) object.emplace("truncated", true);
    return json::Value(std::move(object));
}

json::Value trace_to_json(const Network& network, const Trace& trace) {
    json::Array entries;
    for (std::size_t i = 0; i < trace.entries.size(); ++i) {
        const auto& entry = trace.entries[i];
        json::Object step;
        step.emplace("link", network.topology.describe_link(entry.link));
        step.emplace("header", display_header(network.labels, entry.header));
        if (i + 1 < trace.entries.size())
            step.emplace("ops", ops_between(network, entry, trace.entries[i + 1]));
        entries.push_back(json::Value(std::move(step)));
    }
    return json::Value(std::move(entries));
}

} // namespace

json::Value result_to_json_value(const Network& network, const std::string& query_text,
                                 const verify::VerifyResult& result,
                                 bool include_stats) {
    json::Object object;
    object.emplace("query", query_text);
    object.emplace("answer", std::string(to_string(result.answer)));
    object.emplace("seconds", result.stats.total_seconds);
    if (!result.weight.empty()) {
        json::Array weight;
        for (const auto w : result.weight) weight.push_back(json::Value(w));
        object.emplace("weight", json::Value(std::move(weight)));
    }
    if (result.trace) object.emplace("trace", trace_to_json(network, *result.trace));
    if (result.witnesses.size() > 1) {
        json::Array witnesses;
        for (const auto& trace : result.witnesses)
            witnesses.push_back(trace_to_json(network, trace));
        object.emplace("witnesses", json::Value(std::move(witnesses)));
    }
    if (!result.note.empty()) object.emplace("note", result.note);
    if (include_stats) {
        json::Object stats;
        // Legacy flat keys (over-approximation phase), kept for consumers of
        // earlier releases; the nested phase objects carry the full picture.
        stats.emplace("pdaRules", result.stats.over.pda_rules);
        stats.emplace("pdaRulesBeforeReduction",
                      result.stats.over.pda_rules_before_reduction);
        stats.emplace("saturationIterations", result.stats.over.saturation_iterations);
        stats.emplace("automatonTransitions", result.stats.over.automaton_transitions);
        stats.emplace("usedUnderApproximation", result.stats.under.ran);
        if (result.stats.over.ran) stats.emplace("over", phase_to_json(result.stats.over));
        if (result.stats.under.ran)
            stats.emplace("under", phase_to_json(result.stats.under));
        stats.emplace("totalSeconds", result.stats.total_seconds);
        object.emplace("stats", json::Value(std::move(stats)));
    }
    return json::Value(std::move(object));
}

std::string result_to_json(const Network& network, const std::string& query_text,
                           const verify::VerifyResult& result, bool include_stats,
                           int indent) {
    return json::write(result_to_json_value(network, query_text, result, include_stats),
                       indent);
}

json::Value sweep_to_json_value(const Network& network, const verify::SweepSpec& spec,
                                const verify::SweepResult& sweep, bool include_stats) {
    json::Object object;
    object.emplace("template", spec.query_template);

    json::Array pairs;
    for (const auto& [src, dst] : spec.endpoint_pairs) {
        json::Array pair;
        pair.emplace_back(src);
        pair.emplace_back(dst);
        pairs.push_back(json::Value(std::move(pair)));
    }
    object.emplace("pairs", json::Value(std::move(pairs)));

    json::Array budgets;
    for (const auto k : spec.failure_budgets) budgets.push_back(json::Value(k));
    object.emplace("budgets", json::Value(std::move(budgets)));

    json::Array scenarios;
    for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
        const auto& scenario = spec.scenarios[s];
        scenarios.emplace_back(scenario.name.empty() ? "s" + std::to_string(s)
                                                     : scenario.name);
    }
    object.emplace("scenarios", json::Value(std::move(scenarios)));

    json::Array cells;
    for (const auto& cell : sweep.cells) {
        json::Object entry;
        entry.emplace("pair", cell.pair);
        entry.emplace("budget", cell.budget);
        if (cell.budget < spec.failure_budgets.size())
            entry.emplace("k", spec.failure_budgets[cell.budget]);
        entry.emplace("scenario", cell.scenario);
        if (!cell.error.empty()) {
            entry.emplace("query", cell.query_text);
            entry.emplace("error", cell.error);
            cells.push_back(json::Value(std::move(entry)));
            continue;
        }
        entry.emplace("answer", std::string(to_string(cell.result.answer)));
        entry.emplace("path", std::string(to_string(cell.path)));
        entry.emplace("seconds", cell.seconds);
        if (!cell.result.weight.empty()) {
            json::Array weight;
            for (const auto w : cell.result.weight) weight.push_back(json::Value(w));
            entry.emplace("weight", json::Value(std::move(weight)));
        }
        if (!cell.result.note.empty()) entry.emplace("note", cell.result.note);
        if (include_stats) {
            // The full per-query shape (trace and phase stats included),
            // keyed under "detail" so the compact fields stay flat.
            entry.emplace("detail", result_to_json_value(network, cell.query_text,
                                                         cell.result, true));
        }
        cells.push_back(json::Value(std::move(entry)));
    }
    object.emplace("cells", json::Value(std::move(cells)));

    json::Object stats;
    stats.emplace("cells", sweep.stats.cells);
    stats.emplace("coldSaturations", sweep.stats.cold_saturations);
    stats.emplace("reusedFrontiers", sweep.stats.reused_frontiers);
    stats.emplace("sharedSaturations", sweep.stats.shared_saturations);
    stats.emplace("nfaCompiles", sweep.stats.nfa_compiles);
    stats.emplace("errors", sweep.stats.errors);
    stats.emplace("seconds", sweep.stats.seconds);
    object.emplace("stats", json::Value(std::move(stats)));
    return json::Value(std::move(object));
}

} // namespace aalwines::io
