#include "io/results_json.hpp"

namespace aalwines::io {

namespace {

/// The operation sequence the router applied between two consecutive trace
/// entries (lowest-priority-group match, as in the feasibility check).
std::string ops_between(const Network& network, const TraceEntry& current,
                        const TraceEntry& next) {
    const auto* groups = network.routing.entry(current.link, current.header.back());
    if (groups == nullptr) return "?";
    for (const auto& group : *groups) {
        for (const auto& rule : group) {
            if (rule.out_link != next.link) continue;
            const auto rewritten = apply_ops(network.labels, current.header, rule.ops);
            if (rewritten && *rewritten == next.header)
                return describe_ops(network.labels, rule.ops);
        }
    }
    return "?";
}

json::Value phase_to_json(const verify::PhaseStats& phase) {
    json::Object object;
    object.emplace("pdaRules", phase.pda_rules);
    object.emplace("pdaRulesBeforeReduction", phase.pda_rules_before_reduction);
    object.emplace("pdaStates", phase.pda_states);
    if (phase.pda_rules_expanded != 0) {
        object.emplace("pdaRulesExpanded", phase.pda_rules_expanded);
        object.emplace("pdaStatesExpanded", phase.pda_states_expanded);
    }
    if (phase.lazy_translation) {
        object.emplace("lazyTranslation", true);
        object.emplace("pdaRulesTotal", phase.pda_rules_total);
        object.emplace("pdaRulesMaterialized", phase.pda_rules_materialized);
        object.emplace("pdaStatesMaterialized", phase.pda_states_materialized);
    }
    object.emplace("saturationIterations", phase.saturation_iterations);
    object.emplace("automatonTransitions", phase.automaton_transitions);
    object.emplace("worklistRelaxations", phase.worklist_relaxations);
    object.emplace("peakWorklist", phase.peak_worklist);
    object.emplace("seconds", phase.seconds);
    // Wall-clock split of `seconds` by pipeline stage (dual/weighted
    // engines; zeros for moped/exact, which run their own pipelines).
    object.emplace("translateSeconds", phase.translate_seconds);
    object.emplace("reduceSeconds", phase.reduce_seconds);
    object.emplace("saturateSeconds", phase.saturate_seconds);
    object.emplace("acceptSeconds", phase.accept_seconds);
    object.emplace("witnessSeconds", phase.witness_seconds);
    if (phase.solver_threads > 1) {
        object.emplace("solverThreads", phase.solver_threads);
        object.emplace("parallelRounds", phase.parallel_rounds);
        object.emplace("parallelHandoffs", phase.parallel_handoffs);
    }
    if (phase.truncated) object.emplace("truncated", true);
    return json::Value(std::move(object));
}

json::Value trace_to_json(const Network& network, const Trace& trace) {
    json::Array entries;
    for (std::size_t i = 0; i < trace.entries.size(); ++i) {
        const auto& entry = trace.entries[i];
        json::Object step;
        step.emplace("link", network.topology.describe_link(entry.link));
        step.emplace("header", display_header(network.labels, entry.header));
        if (i + 1 < trace.entries.size())
            step.emplace("ops", ops_between(network, entry, trace.entries[i + 1]));
        entries.push_back(json::Value(std::move(step)));
    }
    return json::Value(std::move(entries));
}

} // namespace

json::Value result_to_json_value(const Network& network, const std::string& query_text,
                                 const verify::VerifyResult& result,
                                 bool include_stats) {
    json::Object object;
    object.emplace("query", query_text);
    object.emplace("answer", std::string(to_string(result.answer)));
    object.emplace("seconds", result.stats.total_seconds);
    if (!result.weight.empty()) {
        json::Array weight;
        for (const auto w : result.weight) weight.push_back(json::Value(w));
        object.emplace("weight", json::Value(std::move(weight)));
    }
    if (result.trace) object.emplace("trace", trace_to_json(network, *result.trace));
    if (result.witnesses.size() > 1) {
        json::Array witnesses;
        for (const auto& trace : result.witnesses)
            witnesses.push_back(trace_to_json(network, trace));
        object.emplace("witnesses", json::Value(std::move(witnesses)));
    }
    if (!result.note.empty()) object.emplace("note", result.note);
    if (include_stats) {
        json::Object stats;
        // Legacy flat keys (over-approximation phase), kept for consumers of
        // earlier releases; the nested phase objects carry the full picture.
        stats.emplace("pdaRules", result.stats.over.pda_rules);
        stats.emplace("pdaRulesBeforeReduction",
                      result.stats.over.pda_rules_before_reduction);
        stats.emplace("saturationIterations", result.stats.over.saturation_iterations);
        stats.emplace("automatonTransitions", result.stats.over.automaton_transitions);
        stats.emplace("usedUnderApproximation", result.stats.under.ran);
        if (result.stats.over.ran) stats.emplace("over", phase_to_json(result.stats.over));
        if (result.stats.under.ran)
            stats.emplace("under", phase_to_json(result.stats.under));
        stats.emplace("totalSeconds", result.stats.total_seconds);
        object.emplace("stats", json::Value(std::move(stats)));
    }
    return json::Value(std::move(object));
}

std::string result_to_json(const Network& network, const std::string& query_text,
                           const verify::VerifyResult& result, bool include_stats,
                           int indent) {
    return json::write(result_to_json_value(network, query_text, result, include_stats),
                       indent);
}

} // namespace aalwines::io
