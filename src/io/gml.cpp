#include <cctype>
#include <sstream>
#include <charconv>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "io/formats.hpp"

namespace aalwines::io {

namespace {

// GML (Graph Modelling Language) as used by the Internet Topology Zoo:
// nested `key [ ... ]` records with string/number scalars.

struct GmlValue;
using GmlRecord = std::vector<std::pair<std::string, GmlValue>>;

struct GmlValue {
    std::string scalar;             // raw text of a scalar value
    std::unique_ptr<GmlRecord> record; // set for [ ... ] blocks

    [[nodiscard]] const GmlValue* find(std::string_view key) const {
        if (!record) return nullptr;
        for (const auto& [k, v] : *record)
            if (k == key) return &v;
        return nullptr;
    }
};

class GmlParser {
public:
    explicit GmlParser(std::string_view text) : _text(text) {}

    GmlRecord parse() {
        GmlRecord top;
        skip_ws();
        while (!at_end()) {
            auto key = word();
            skip_ws();
            top.emplace_back(std::move(key), value());
            skip_ws();
        }
        return top;
    }

private:
    std::string_view _text;
    std::size_t _pos = 0;
    unsigned _line = 1;

    [[nodiscard]] bool at_end() const { return _pos >= _text.size(); }
    [[nodiscard]] char peek() const { return _text[_pos]; }

    void skip_ws() {
        for (;;) {
            while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) {
                if (peek() == '\n') ++_line;
                ++_pos;
            }
            if (!at_end() && peek() == '#') { // comment to end of line
                while (!at_end() && peek() != '\n') ++_pos;
                continue;
            }
            return;
        }
    }

    std::string word() {
        skip_ws();
        std::string out;
        while (!at_end() && !std::isspace(static_cast<unsigned char>(peek())) &&
               peek() != '[' && peek() != ']')
            out.push_back(_text[_pos++]);
        if (out.empty()) throw parse_error("GML: expected a key", {_line, 0});
        return out;
    }

    GmlValue value() {
        skip_ws();
        GmlValue out;
        if (at_end()) throw parse_error("GML: expected a value", {_line, 0});
        if (peek() == '[') {
            ++_pos;
            out.record = std::make_unique<GmlRecord>();
            skip_ws();
            while (!at_end() && peek() != ']') {
                auto key = word();
                out.record->emplace_back(std::move(key), value());
                skip_ws();
            }
            if (at_end()) throw parse_error("GML: unterminated block", {_line, 0});
            ++_pos; // ']'
            return out;
        }
        if (peek() == '"') {
            ++_pos;
            while (!at_end() && peek() != '"') out.scalar.push_back(_text[_pos++]);
            if (at_end()) throw parse_error("GML: unterminated string", {_line, 0});
            ++_pos;
            return out;
        }
        while (!at_end() && !std::isspace(static_cast<unsigned char>(peek())) &&
               peek() != ']')
            out.scalar.push_back(_text[_pos++]);
        return out;
    }
};

std::optional<double> as_double(const GmlValue* value) {
    if (value == nullptr || value->scalar.empty()) return std::nullopt;
    try {
        return std::stod(value->scalar);
    } catch (...) {
        return std::nullopt;
    }
}

std::optional<long> as_long(const GmlValue* value) {
    if (value == nullptr) return std::nullopt;
    long out = 0;
    const auto& s = value->scalar;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
    return out;
}

} // namespace

Topology read_gml(std::string_view document, std::string* name) {
    GmlParser parser(document);
    const auto top = parser.parse();

    const GmlRecord* graph = nullptr;
    for (const auto& [key, value] : top)
        if (key == "graph" && value.record) graph = value.record.get();
    if (graph == nullptr) throw model_error("GML: no 'graph' block");

    Topology topology;
    std::map<long, RouterId> routers;
    std::map<RouterId, unsigned> interface_counters;
    if (name != nullptr) name->clear();

    for (const auto& [key, value] : *graph) {
        if (key == "label" && name != nullptr && name->empty()) *name = value.scalar;
        if (key == "node" && value.record) {
            const auto id = as_long(value.find("id"));
            if (!id) throw model_error("GML: node without id");
            std::string router_name;
            if (const auto* label = value.find("label"); label && !label->scalar.empty())
                router_name = label->scalar;
            else
                router_name = "N" + std::to_string(*id);
            // Zoo files occasionally repeat labels; make names unique.
            if (topology.find_router(router_name))
                router_name += "_" + std::to_string(*id);
            const auto router = topology.add_router(router_name);
            routers.emplace(*id, router);
            const auto lat = as_double(value.find("Latitude"));
            const auto lng = as_double(value.find("Longitude"));
            if (lat && lng) topology.set_coordinate(router, {*lat, *lng});
        }
    }
    for (const auto& [key, value] : *graph) {
        if (key != "edge" || !value.record) continue;
        const auto source = as_long(value.find("source"));
        const auto target = as_long(value.find("target"));
        if (!source || !target) throw model_error("GML: edge without source/target");
        const auto source_it = routers.find(*source);
        const auto target_it = routers.find(*target);
        if (source_it == routers.end() || target_it == routers.end())
            throw model_error("GML: edge references unknown node");
        const auto a = source_it->second;
        const auto b = target_it->second;
        const auto if_a = "i" + std::to_string(interface_counters[a]++);
        const auto if_b = "i" + std::to_string(interface_counters[b]++);
        topology.add_duplex(a, if_a, b, if_b);
    }
    topology.distances_from_coordinates();
    return topology;
}

std::string write_gml(const Topology& topology, std::string_view name) {
    std::ostringstream out;
    out << "graph [\n";
    if (!name.empty()) out << "  label \"" << name << "\"\n";
    for (RouterId r = 0; r < topology.router_count(); ++r) {
        out << "  node [\n    id " << r << "\n    label \""
            << topology.router_name(r) << "\"\n";
        if (const auto coord = topology.coordinate(r)) {
            out << "    Latitude " << coord->latitude << "\n";
            out << "    Longitude " << coord->longitude << "\n";
        }
        out << "  ]\n";
    }
    // Emit each duplex pair once (the canonical direction has the smaller
    // id among the two opposite links over the same interfaces).
    for (const auto& link : topology.links()) {
        bool is_canonical = true;
        for (const auto& other : topology.links()) {
            if (other.source_interface == link.target_interface &&
                other.target_interface == link.source_interface && other.id < link.id)
                is_canonical = false;
        }
        if (!is_canonical) continue;
        out << "  edge [\n    source " << link.source << "\n    target "
            << link.target << "\n  ]\n";
    }
    out << "]\n";
    return out.str();
}

} // namespace aalwines::io
