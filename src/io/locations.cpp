#include "io/formats.hpp"
#include "json/json.hpp"

namespace aalwines::io {

std::size_t apply_locations_json(std::string_view document, Topology& topology) {
    const auto value = json::parse(document);
    if (!value.is_object()) throw model_error("locations document must be a JSON object");
    std::size_t applied = 0;
    for (const auto& [router_name, location] : value.as_object()) {
        const auto router = topology.find_router(router_name);
        if (!router) continue; // paper's format may carry aliases we do not model
        if (!location.is_object()) continue;
        const auto* lat = location.find("lat");
        const auto* lng = location.find("lng");
        if (lat == nullptr || lng == nullptr || !lat->is_number() || !lng->is_number())
            continue;
        topology.set_coordinate(*router, {lat->as_double(), lng->as_double()});
        ++applied;
    }
    return applied;
}

std::string write_locations_json(const Topology& topology) {
    json::Object object;
    for (RouterId r = 0; r < topology.router_count(); ++r) {
        const auto coord = topology.coordinate(r);
        if (!coord) continue;
        json::Object entry;
        entry.emplace("lat", json::Value(coord->latitude));
        entry.emplace("lng", json::Value(coord->longitude));
        object.emplace(topology.router_name(r), json::Value(std::move(entry)));
    }
    return json::write(json::Value(std::move(object)), 2);
}

} // namespace aalwines::io
