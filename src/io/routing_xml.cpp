#include <charconv>

#include "io/formats.hpp"
#include "xml/xml.hpp"

namespace aalwines::io {

namespace {

LabelType parse_label_type(std::string_view text) {
    if (text == "ip") return LabelType::Ip;
    if (text == "smpls") return LabelType::MplsBos;
    if (text == "mpls" || text.empty()) return LabelType::Mpls;
    throw model_error("unknown label type '" + std::string(text) + "'");
}

std::string_view label_type_attr(LabelType type) { return to_string(type); }

// Failover chains in real routing tables are a handful of groups deep; an
// adversarial priority like 4000000000 would otherwise make the routing
// table allocate that many empty groups per entry (a loader DoS, found by
// the fuzz harness).
inline constexpr std::uint32_t k_max_te_priority = 1024;

std::uint32_t parse_priority(std::string_view text) {
    std::uint32_t value = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size() || value == 0)
        throw model_error("invalid te-group priority '" + std::string(text) + "'");
    if (value > k_max_te_priority)
        throw model_error("te-group priority " + std::to_string(value) +
                          " exceeds the supported maximum of " +
                          std::to_string(k_max_te_priority));
    return value;
}

} // namespace

RoutingTable read_routing_xml(std::string_view document, const Topology& topology,
                              LabelTable& labels) {
    const auto root = xml::parse(document);
    if (root.name != "routes")
        throw model_error("routing document root must be <routes>, got <" + root.name + ">");
    RoutingTable routing;

    const auto* routings = root.first_child("routings");
    if (routings == nullptr) return routing;
    for (const auto* routing_el : routings->children_named("routing")) {
        const auto router = topology.find_router(routing_el->required_attr("for"));
        if (!router)
            throw model_error("routing for unknown router '" +
                              std::string(routing_el->required_attr("for")) + "'");
        const auto* destinations = routing_el->first_child("destinations");
        if (destinations == nullptr) continue;
        for (const auto* dest : destinations->children_named("destination")) {
            const auto from_interface = dest->required_attr("from");
            const auto in_link = topology.in_link_through(*router, from_interface);
            if (!in_link)
                throw model_error("router '" + topology.router_name(*router) +
                                  "' has no incoming link through interface '" +
                                  std::string(from_interface) + "'");
            const auto label =
                labels.add(parse_label_type(dest->attr("type").value_or("mpls")),
                           dest->required_attr("label"));
            for (const auto* group : dest->children_named("te-group")) {
                const auto priority = parse_priority(group->required_attr("priority"));
                for (const auto* route : group->children_named("route")) {
                    const auto to_interface = route->required_attr("to");
                    const auto out_link = topology.out_link_through(*router, to_interface);
                    if (!out_link)
                        throw model_error("router '" + topology.router_name(*router) +
                                          "' has no outgoing link through interface '" +
                                          std::string(to_interface) + "'");
                    std::vector<Op> ops;
                    if (const auto* actions = route->first_child("actions")) {
                        for (const auto* action : actions->children_named("action")) {
                            const auto op_kind = action->required_attr("op");
                            if (op_kind == "pop") {
                                ops.push_back(Op::pop());
                            } else {
                                const auto op_label = labels.add(
                                    parse_label_type(action->attr("type").value_or("mpls")),
                                    action->required_attr("label"));
                                if (op_kind == "push") ops.push_back(Op::push(op_label));
                                else if (op_kind == "swap") ops.push_back(Op::swap(op_label));
                                else
                                    throw model_error("unknown action op '" +
                                                      std::string(op_kind) + "'");
                            }
                        }
                    }
                    routing.add_rule(*in_link, label, priority, *out_link, std::move(ops));
                }
            }
        }
    }
    routing.validate(topology);
    return routing;
}

std::string write_routing_xml(const Network& network) {
    const auto& topology = network.topology;
    const auto& labels = network.labels;

    xml::Element root;
    root.name = "routes";
    xml::Element routings;
    routings.name = "routings";

    // Group entries by the router the in-link enters.
    std::vector<xml::Element> per_router(topology.router_count());
    for (RouterId r = 0; r < topology.router_count(); ++r) {
        per_router[r].name = "routing";
        per_router[r].attributes.emplace_back("for", topology.router_name(r));
        xml::Element destinations;
        destinations.name = "destinations";
        per_router[r].children.push_back(std::move(destinations));
    }

    network.routing.for_each([&](LinkId in_link, Label label, const RoutingEntry& groups) {
        const auto& link = topology.link(in_link);
        xml::Element destination;
        destination.name = "destination";
        destination.attributes.emplace_back(
            "from", topology.interface(link.target_interface).name);
        destination.attributes.emplace_back("label", labels.name_of(label));
        destination.attributes.emplace_back("type",
                                            std::string(label_type_attr(labels.type_of(label))));
        for (std::size_t priority = 0; priority < groups.size(); ++priority) {
            if (groups[priority].empty()) continue;
            xml::Element group;
            group.name = "te-group";
            group.attributes.emplace_back("priority", std::to_string(priority + 1));
            for (const auto& rule : groups[priority]) {
                xml::Element route;
                route.name = "route";
                route.attributes.emplace_back(
                    "to",
                    topology.interface(topology.link(rule.out_link).source_interface).name);
                xml::Element actions;
                actions.name = "actions";
                for (const auto& op : rule.ops) {
                    xml::Element action;
                    action.name = "action";
                    switch (op.kind) {
                        case Op::Kind::Pop:
                            action.attributes.emplace_back("op", "pop");
                            break;
                        case Op::Kind::Push:
                        case Op::Kind::Swap:
                            action.attributes.emplace_back(
                                "op", op.kind == Op::Kind::Push ? "push" : "swap");
                            action.attributes.emplace_back("label", labels.name_of(op.label));
                            action.attributes.emplace_back(
                                "type", std::string(label_type_attr(labels.type_of(op.label))));
                            break;
                    }
                    actions.children.push_back(std::move(action));
                }
                route.children.push_back(std::move(actions));
                group.children.push_back(std::move(route));
            }
            destination.children.push_back(std::move(group));
        }
        per_router[link.target].children.front().children.push_back(std::move(destination));
    });

    for (auto& routing_el : per_router) {
        if (routing_el.children.front().children.empty()) continue;
        routings.children.push_back(std::move(routing_el));
    }
    root.children.push_back(std::move(routings));
    return xml::write(root);
}

} // namespace aalwines::io
