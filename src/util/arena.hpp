#pragma once
// Bump-pointer arena for hot-path scratch allocations.
//
// The saturation solvers and the accepting-configuration searches allocate
// many short-lived nodes (product-graph visits, witness-provenance records,
// worklist buckets) whose lifetimes all end together.  A bump arena turns
// those into pointer increments; `reset()` recycles every chunk without
// returning memory to the allocator, so repeated post*/pre* calls on the
// same PDA reuse the high-water footprint of the first call.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace aalwines::util {

class Arena {
public:
    static constexpr std::size_t k_default_chunk = 64 * 1024;

    explicit Arena(std::size_t chunk_bytes = k_default_chunk)
        : _chunk_bytes(chunk_bytes) {}

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;
    Arena(Arena&&) = default;
    Arena& operator=(Arena&&) = default;

    /// Raw allocation; `align` must be a power of two.
    void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
        std::size_t offset = (_offset + align - 1) & ~(align - 1);
        if (_current >= _chunks.size() || offset + bytes > _chunks[_current].size) {
            next_chunk(bytes + align);
            offset = (_offset + align - 1) & ~(align - 1);
        }
        void* out = _chunks[_current].data.get() + offset;
        _offset = offset + bytes;
        _allocated += bytes;
        return out;
    }

    /// Construct a `T` in the arena.  Destructors are never run: only use
    /// trivially destructible types (enforced at compile time).
    template <typename T, typename... Args>
    T* create(Args&&... args) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena-allocated types must be trivially destructible");
        return ::new (allocate(sizeof(T), alignof(T))) T{std::forward<Args>(args)...};
    }

    /// Uninitialized array of `n` `T`s.
    template <typename T>
    T* create_array(std::size_t n) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena-allocated types must be trivially destructible");
        return static_cast<T*>(allocate(sizeof(T) * n, alignof(T)));
    }

    /// Recycle every chunk; previously returned pointers become invalid but
    /// the memory stays owned by the arena for the next round.
    void reset() noexcept {
        _current = 0;
        _offset = 0;
        _allocated = 0;
    }

    /// Bytes handed out since the last reset().
    [[nodiscard]] std::size_t allocated() const noexcept { return _allocated; }
    /// Bytes held in chunks (high-water footprint; survives reset()).
    [[nodiscard]] std::size_t capacity() const noexcept {
        std::size_t total = 0;
        for (const auto& chunk : _chunks) total += chunk.size;
        return total;
    }
    [[nodiscard]] std::size_t chunk_count() const noexcept { return _chunks.size(); }

private:
    struct Chunk {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    void next_chunk(std::size_t at_least) {
        // Advance into recycled chunks (available again after reset()) until
        // one is large enough; otherwise append a fresh chunk.
        while (_current + 1 < _chunks.size()) {
            ++_current;
            _offset = 0;
            if (_chunks[_current].size >= at_least) return;
        }
        const std::size_t size = std::max(_chunk_bytes, at_least);
        _chunks.push_back({std::make_unique<std::byte[]>(size), size});
        _current = _chunks.size() - 1;
        _offset = 0;
    }

    std::size_t _chunk_bytes;
    std::vector<Chunk> _chunks;
    std::size_t _current = 0;
    std::size_t _offset = 0;
    std::size_t _allocated = 0;
};

} // namespace aalwines::util
