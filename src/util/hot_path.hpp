#pragma once
// AALWINES_HOT_PATH — marks a function as part of the saturation inner loop
// (the per-pop work in post*/pre*), where heap allocation is budgeted
// through util::Arena only.  The marker expands to a clang `annotate`
// attribute that the aalwines-no-alloc-in-hot-path lint check (tools/lint/,
// scripts/aalwines-lint) keys on: inside a marked function, `new`
// expressions and growth of node-based std containers (std::map, std::set,
// std::unordered_map, std::unordered_set) are diagnosed as errors.
//
// The attribute has no effect on code generation; on non-clang compilers it
// expands to nothing, and the lexical fallback engine of aalwines-lint
// recognises the macro token itself.

#if defined(__clang__)
#define AALWINES_HOT_PATH __attribute__((annotate("aalwines_hot_path")))
#else
#define AALWINES_HOT_PATH
#endif
