#pragma once
// Clang thread-safety-analysis attribute macros (docs/CORRECTNESS.md,
// "Static analysis").  Annotating a mutex-protected field with
// GUARDED_BY(mutex) turns its locking protocol into a *compile-time*
// contract: clang's -Wthread-safety proves, for every path through every
// function, that the capability is held at each access — all schedules,
// not just the ones a TSan run happens to observe.
//
// Conventions:
//   * every non-atomic field shared between threads carries GUARDED_BY
//     (or PT_GUARDED_BY for the pointee of a shared pointer);
//   * private helpers that assume the lock is held are suffixed `_locked`
//     and annotated REQUIRES(mutex);
//   * functions that must NOT be called with the lock held (they take it
//     themselves) may be annotated EXCLUDES(mutex) to catch self-deadlock.
//
// The macros expand to clang attributes under clang and to nothing under
// any other compiler, so gcc builds are unaffected.  CI compiles the clang
// jobs with -Werror=thread-safety; there are no suppressions in src/.
// Use the util::Mutex / util::MutexLock / util::CondVar wrappers from
// util/mutex.hpp — raw std::mutex outside src/util/ is rejected by the
// aalwines-no-naked-mutex lint check (scripts/aalwines-lint).

#if defined(__clang__) && !defined(SWIG)
#define AALWINES_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AALWINES_THREAD_ANNOTATION(x) // no-op off clang
#endif

/// Marks a class as a lockable capability ("mutex", "role", ...).
#define CAPABILITY(x) AALWINES_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY AALWINES_THREAD_ANNOTATION(scoped_lockable)

/// Field access requires the given capability to be held.
#define GUARDED_BY(x) AALWINES_THREAD_ANNOTATION(guarded_by(x))

/// Dereferencing this pointer requires the given capability.
#define PT_GUARDED_BY(x) AALWINES_THREAD_ANNOTATION(pt_guarded_by(x))

/// Callers must hold the listed capabilities (not acquired/released here).
#define REQUIRES(...) \
    AALWINES_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Callers must hold the listed capabilities shared (read) mode.
#define REQUIRES_SHARED(...) \
    AALWINES_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) AALWINES_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases a capability the caller held.
#define RELEASE(...) AALWINES_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Acquires the capability iff the return value equals the first argument.
#define TRY_ACQUIRE(...) \
    AALWINES_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Callers must NOT hold the listed capabilities (deadlock prevention).
#define EXCLUDES(...) AALWINES_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations between capabilities.
#define ACQUIRED_BEFORE(...) AALWINES_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) AALWINES_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) AALWINES_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot follow.  Policy: never used
/// in src/ outside util/mutex.hpp's wrapper internals (zero suppressions);
/// the macro exists so the contract is greppable, not so it can spread.
#define NO_THREAD_SAFETY_ANALYSIS AALWINES_THREAD_ANNOTATION(no_thread_safety_analysis)
