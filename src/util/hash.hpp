#pragma once
// Hash helpers: boost-style hash_combine and a std::hash specialisation
// helper for aggregate key types used throughout the library.

#include <cstddef>
#include <cstdint>
#include <functional>

namespace aalwines {

/// Mix `value`'s hash into `seed` (boost::hash_combine with a 64-bit mixer).
template <typename T>
void hash_combine(std::size_t& seed, const T& value) {
    std::size_t h = std::hash<T>{}(value);
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    seed ^= h + (seed << 6) + (seed >> 2);
}

/// Hash a pack of values into a single seed.
template <typename... Ts>
std::size_t hash_all(const Ts&... values) {
    std::size_t seed = 0;
    (hash_combine(seed, values), ...);
    return seed;
}

} // namespace aalwines
