#pragma once
// AALWINES_CHECK / AALWINES_ASSERT — the library's contract-checking macros.
//
// Policy (docs/CORRECTNESS.md): library code never raw-`assert`s on anything
// derived from user input.
//
//   AALWINES_CHECK(cond, message)   always compiled in; guards conditions
//     reachable from malformed input or API misuse (index accessors fed by
//     loader-produced ids, boundary lookups).  Failure throws `model_error`
//     through errors.hpp — malformed input is an error, never UB.
//
//   AALWINES_ASSERT(cond, message)  internal invariant; enabled in builds
//     without NDEBUG and in any build configured with -DAALWINES_ASSERTS=ON.
//     Failure throws `invariant_error` instead of aborting, so harnesses
//     (tests, fuzzers, `aalwines --validate`) observe the violation as a
//     reportable error.  Compiles to nothing when disabled.
//
// The message expression is evaluated only on failure, so string
// concatenation in call sites costs nothing on the happy path.

#include <string>

#include "util/errors.hpp"

namespace aalwines::detail {

[[noreturn]] void check_failed(const char* expression, const char* file, int line,
                               const std::string& message);
[[noreturn]] void invariant_failed(const char* expression, const char* file, int line,
                                   const std::string& message);

} // namespace aalwines::detail

#define AALWINES_CHECK(condition, message)                                       \
    do {                                                                         \
        if (!(condition)) [[unlikely]]                                           \
            ::aalwines::detail::check_failed(#condition, __FILE__, __LINE__,     \
                                             (message));                         \
    } while (false)

#if !defined(NDEBUG) || (defined(AALWINES_KEEP_ASSERTS) && AALWINES_KEEP_ASSERTS)
#define AALWINES_ASSERTS_ENABLED 1
#define AALWINES_ASSERT(condition, message)                                      \
    do {                                                                         \
        if (!(condition)) [[unlikely]]                                           \
            ::aalwines::detail::invariant_failed(#condition, __FILE__, __LINE__, \
                                                 (message));                     \
    } while (false)
#else
#define AALWINES_ASSERTS_ENABLED 0
#define AALWINES_ASSERT(condition, message) ((void)0)
#endif
