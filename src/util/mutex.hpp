#pragma once
// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable carrying the clang thread-safety attributes from
// util/thread_annotations.hpp.  All lock-based code in src/ uses these —
// raw std::mutex outside src/util/ is rejected by the
// aalwines-no-naked-mutex lint check — so every GUARDED_BY contract in the
// server, telemetry and batch layers is machine-checked under
// -Werror=thread-safety in the clang CI jobs.
//
//   util::Mutex mutex;
//   int value GUARDED_BY(mutex);
//
//   {
//       const util::MutexLock lock(mutex);   // scoped acquire
//       ++value;                             // ok: capability held
//       while (!ready) condvar.wait(mutex);  // atomically release + reacquire
//   }
//
// The wrappers are zero-cost: Mutex is layout-identical to std::mutex,
// MutexLock to std::lock_guard, and CondVar waits on the underlying
// std::mutex through std::unique_lock with adopt/release (no
// condition_variable_any, no extra indirection).

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace aalwines::util {

class CondVar;

/// Exclusive lockable capability.  Prefer MutexLock over manual
/// lock()/unlock() pairs; the manual API exists for the rare scope that a
/// RAII guard cannot express.
class CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ACQUIRE() { _mutex.lock(); }
    void unlock() RELEASE() { _mutex.unlock(); }
    [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return _mutex.try_lock(); }

private:
    friend class CondVar;
    std::mutex _mutex;
};

/// Scoped acquire/release of a Mutex (std::lock_guard with annotations).
class SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : _mutex(mutex) { _mutex.lock(); }
    ~MutexLock() RELEASE() { _mutex.unlock(); }
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& _mutex;
};

/// Condition variable bound to util::Mutex.  wait() names the mutex
/// explicitly so the analysis can check the caller holds it:
///
///   util::MutexLock lock(_mutex);
///   while (_queue.empty() && !_draining) _ready.wait(_mutex);
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// Atomically release `mutex`, block, reacquire before returning.  The
    /// caller must hold `mutex` (checked); spurious wakeups happen, so
    /// always wait in a predicate loop.
    void wait(Mutex& mutex) REQUIRES(mutex) {
        std::unique_lock<std::mutex> inner(mutex._mutex, std::adopt_lock);
        _cv.wait(inner);
        inner.release(); // ownership returns to the caller's MutexLock
    }

    /// Predicate form: waits until `pred()` holds.  `pred` runs with
    /// `mutex` held, so it may read GUARDED_BY(mutex) state when spelled as
    /// a REQUIRES(mutex)-annotated lambda or helper.
    template <typename Predicate>
    void wait(Mutex& mutex, Predicate pred) REQUIRES(mutex) {
        while (!pred()) wait(mutex);
    }

    void notify_one() noexcept { _cv.notify_one(); }
    void notify_all() noexcept { _cv.notify_all(); }

private:
    std::condition_variable _cv;
};

} // namespace aalwines::util
