#include "util/errors.hpp"

namespace aalwines {

namespace {
std::string format_message(const std::string& message, SourcePos pos) {
    if (pos.line == 0) return message;
    return message + " (at line " + std::to_string(pos.line) + ", column " +
           std::to_string(pos.column) + ")";
}
} // namespace

parse_error::parse_error(std::string message, SourcePos pos)
    : std::runtime_error(format_message(message, pos)), _pos(pos) {}

parse_error::parse_error(std::string message)
    : std::runtime_error(std::move(message)) {}

namespace detail {
void fail_parse(const std::string& message, SourcePos pos) {
    throw parse_error(message, pos);
}
} // namespace detail

} // namespace aalwines
