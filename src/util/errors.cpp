#include "util/errors.hpp"

#include "util/check.hpp"

namespace aalwines {

namespace {
std::string format_message(const std::string& message, SourcePos pos) {
    if (pos.line == 0) return message;
    return message + " (at line " + std::to_string(pos.line) + ", column " +
           std::to_string(pos.column) + ")";
}
} // namespace

parse_error::parse_error(std::string message, SourcePos pos)
    : std::runtime_error(format_message(message, pos)), _pos(pos) {}

parse_error::parse_error(std::string message)
    : std::runtime_error(std::move(message)) {}

namespace detail {
void fail_parse(const std::string& message, SourcePos pos) {
    throw parse_error(message, pos);
}

namespace {
std::string format_contract(const char* expression, const char* file, int line,
                            const std::string& message) {
    std::string where(file);
    // Keep the path readable: trim everything before the src/ component.
    if (const auto at = where.rfind("src/"); at != std::string::npos)
        where.erase(0, at);
    return message + " [" + expression + " at " + where + ":" + std::to_string(line) + "]";
}
} // namespace

void check_failed(const char* expression, const char* file, int line,
                  const std::string& message) {
    throw model_error(format_contract(expression, file, line, message));
}

void invariant_failed(const char* expression, const char* file, int line,
                      const std::string& message) {
    throw invariant_error(format_contract(expression, file, line, message));
}
} // namespace detail

} // namespace aalwines
