#pragma once
// A string interner: maps strings to dense uint32 ids and back.
//
// Router names, interface names and label names are interned once at parse
// time; the rest of the library works with 32-bit ids, keeping the hot
// saturation loops free of string comparisons.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace aalwines {

class StringInterner {
public:
    using Id = std::uint32_t;

    StringInterner() = default;
    /// Copying rebuilds the lookup map against the copy's own strings — the
    /// defaulted copy would leave string_view keys pointing into the source
    /// (dangling once the source dies).  Moves keep the map: a moved deque
    /// and moved strings preserve the character storage addresses.
    StringInterner(const StringInterner& other);
    StringInterner& operator=(const StringInterner& other);
    StringInterner(StringInterner&&) noexcept = default;
    StringInterner& operator=(StringInterner&&) noexcept = default;

    /// Intern `text`, returning its dense id (existing id if already known).
    Id intern(std::string_view text);

    /// Id of `text` if already interned.
    [[nodiscard]] std::optional<Id> find(std::string_view text) const;

    /// The string for a previously returned id.  Precondition: id < size().
    [[nodiscard]] const std::string& at(Id id) const;

    [[nodiscard]] std::size_t size() const noexcept { return _strings.size(); }
    [[nodiscard]] bool empty() const noexcept { return _strings.empty(); }

private:
    std::deque<std::string> _strings;
    std::unordered_map<std::string_view, Id> _ids;
};

} // namespace aalwines
