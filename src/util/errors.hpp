#pragma once
// Error types shared across the AalWiNes library.
//
// The library reports malformed input (XML, GML, JSON, query text) through
// `parse_error`, which carries a 1-based line/column position, and internal
// contract violations through `logic_error`-derived types.  Verification
// itself never throws for "query not satisfied" -- that is a regular result.

#include <stdexcept>
#include <string>

namespace aalwines {

/// Position in a textual input, 1-based.  line == 0 means "unknown".
struct SourcePos {
    unsigned line = 0;
    unsigned column = 0;
};

/// Thrown when a textual input (XML, GML, JSON, query) is malformed.
class parse_error : public std::runtime_error {
public:
    parse_error(std::string message, SourcePos pos);
    explicit parse_error(std::string message);

    /// Position of the offending token; line 0 when unknown.
    [[nodiscard]] SourcePos where() const noexcept { return _pos; }

private:
    SourcePos _pos;
};

/// Thrown when input is well-formed but semantically inconsistent with the
/// network model (e.g. a route referencing an unknown interface).
class model_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Thrown by AALWINES_ASSERT (util/check.hpp) when an internal invariant is
/// violated: a bug in the library or a corrupted data structure, never bad
/// user input.  Derives from logic_error; the what() string carries the
/// failed expression and its source location.
class invariant_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void fail_parse(const std::string& message, SourcePos pos);
} // namespace detail

} // namespace aalwines
