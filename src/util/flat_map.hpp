#pragma once
// Open-addressing hash table from packed 64-bit keys to dense 32-bit ids.
//
// The saturation hot paths key everything by small integer pairs — a
// P-automaton transition is (from, symbol, to), a PDA match index entry is
// (state, symbol) — which pack into one uint64.  Interning those keys
// through a flat, power-of-two, linear-probing table replaces the
// node-allocating std::unordered_map lookups with a single mixed probe into
// one contiguous array, and the returned dense ids index plain vectors.
//
// Values are uint32; UINT32_MAX is reserved as the empty-slot marker, which
// matches the library-wide "no id" sentinels (k_no_trans, k_invalid_id).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aalwines::util {

class FlatMap64 {
public:
    static constexpr std::uint32_t k_npos = UINT32_MAX;

    FlatMap64() = default;

    [[nodiscard]] std::size_t size() const noexcept { return _size; }
    [[nodiscard]] bool empty() const noexcept { return _size == 0; }

    void clear() noexcept {
        _slots.clear();
        _mask = 0;
        _size = 0;
    }

    /// Value stored under `key`, or k_npos.
    [[nodiscard]] std::uint32_t find(std::uint64_t key) const noexcept {
        if (_slots.empty()) return k_npos;
        for (std::size_t i = mix(key) & _mask;; i = (i + 1) & _mask) {
            const Slot& slot = _slots[i];
            if (slot.value == k_npos) return k_npos;
            if (slot.key == key) return slot.value;
        }
    }

    /// Insert `value` under `key` unless present.  Returns {stored value,
    /// inserted}: the pre-existing value and false when the key was taken.
    std::pair<std::uint32_t, bool> try_emplace(std::uint64_t key, std::uint32_t value) {
        if (_size + 1 > capacity() - capacity() / 4) grow(); // ≤ 0.75 load
        for (std::size_t i = mix(key) & _mask;; i = (i + 1) & _mask) {
            Slot& slot = _slots[i];
            if (slot.value == k_npos) {
                slot = {key, value};
                ++_size;
                return {value, true};
            }
            if (slot.key == key) return {slot.value, false};
        }
    }

    /// Overwrite-or-insert.
    void insert_or_assign(std::uint64_t key, std::uint32_t value) {
        if (_size + 1 > capacity() - capacity() / 4) grow();
        for (std::size_t i = mix(key) & _mask;; i = (i + 1) & _mask) {
            Slot& slot = _slots[i];
            if (slot.value == k_npos) {
                slot = {key, value};
                ++_size;
                return;
            }
            if (slot.key == key) {
                slot.value = value;
                return;
            }
        }
    }

    void reserve(std::size_t count) {
        std::size_t want = 16;
        while (want - want / 4 < count) want <<= 1;
        if (want > capacity()) rehash(want);
    }

private:
    struct Slot {
        std::uint64_t key = 0;
        std::uint32_t value = k_npos;
    };

    [[nodiscard]] std::size_t capacity() const noexcept { return _slots.size(); }

    /// splitmix64 finalizer: full-avalanche mix of the packed key.
    [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    void grow() { rehash(_slots.empty() ? 16 : _slots.size() * 2); }

    void rehash(std::size_t new_capacity) {
        std::vector<Slot> old = std::move(_slots);
        _slots.assign(new_capacity, Slot{});
        _mask = new_capacity - 1;
        for (const Slot& slot : old) {
            if (slot.value == k_npos) continue;
            for (std::size_t i = mix(slot.key) & _mask;; i = (i + 1) & _mask) {
                if (_slots[i].value == k_npos) {
                    _slots[i] = slot;
                    break;
                }
            }
        }
    }

    std::vector<Slot> _slots;
    std::size_t _mask = 0;
    std::size_t _size = 0;
};

} // namespace aalwines::util
