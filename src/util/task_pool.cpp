#include "util/task_pool.hpp"

namespace aalwines::util {

void SpinBarrier::arrive_and_wait() {
    const auto phase = _phase.load(std::memory_order_acquire);
    if (_arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == _parties) {
        _arrived.store(0, std::memory_order_relaxed);
        const MutexLock lock(_mutex);
        _phase.store(phase + 1, std::memory_order_release);
        _wake.notify_all();
        return;
    }
    // Short spin: when every party has its own core the straggler is
    // microseconds away.  256 polls is well under a scheduler quantum.
    for (int spin = 0; spin < 256; ++spin) {
        if (_phase.load(std::memory_order_acquire) != phase) return;
    }
    MutexLock lock(_mutex);
    _wake.wait(_mutex,
               [&] { return _phase.load(std::memory_order_acquire) != phase; });
}

TaskPool::TaskPool(unsigned threads) : _count(threads == 0 ? 1 : threads) {
    _workers.reserve(_count - 1);
    for (unsigned i = 1; i < _count; ++i)
        _workers.emplace_back([this, i] { worker_main(i); });
}

TaskPool::~TaskPool() {
    {
        const MutexLock lock(_mutex);
        _stopping = true;
    }
    _work.notify_all();
    for (auto& worker : _workers) worker.join();
}

void TaskPool::run(const std::function<void(unsigned)>& fn) {
    if (_count == 1) {
        fn(0);
        return;
    }
    {
        const MutexLock lock(_mutex);
        _job = &fn;
        _active = _count - 1;
        ++_generation;
    }
    _work.notify_all();

    std::exception_ptr caller_error;
    try {
        fn(0);
    } catch (...) {
        caller_error = std::current_exception();
    }

    std::exception_ptr worker_error;
    {
        MutexLock lock(_mutex);
        _done.wait(_mutex, [this]() REQUIRES(_mutex) { return _active == 0; });
        _job = nullptr;
        worker_error = _error;
        _error = nullptr;
    }
    if (caller_error) std::rethrow_exception(caller_error);
    if (worker_error) std::rethrow_exception(worker_error);
}

void TaskPool::worker_main(unsigned index) {
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(unsigned)>* job = nullptr;
        {
            MutexLock lock(_mutex);
            _work.wait(_mutex, [&]() REQUIRES(_mutex) {
                return _stopping || _generation != seen;
            });
            if (_stopping) return;
            seen = _generation;
            job = _job;
        }
        try {
            (*job)(index);
        } catch (...) {
            const MutexLock lock(_mutex);
            if (!_error) _error = std::current_exception();
        }
        bool last = false;
        {
            const MutexLock lock(_mutex);
            last = --_active == 0;
        }
        if (last) _done.notify_one();
    }
}

} // namespace aalwines::util
