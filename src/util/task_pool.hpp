#pragma once
// Fork-join worker pool and phase barrier for the parallel solver
// (pda/solver.cpp, --solver-threads).
//
// TaskPool::run(fn) executes fn(0), ..., fn(threads-1) concurrently — fn(0)
// on the calling thread — and returns once every invocation finished.
// Workers park on a condvar between run() calls, so a pool cached in a
// pda::SolverWorkspace amortizes thread spawn across queries: one spawn per
// verify call, not one per saturation round.
//
// SpinBarrier separates the lock-free phases of the sharded saturation
// rounds.  Arrivals spin briefly (phases are microseconds apart when every
// party has its own core) and then block on a condvar — oversubscribed
// machines (CI containers, --solver-threads above the core count) must not
// busy-wait through scheduler quanta.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace aalwines::util {

/// Sense-reversing barrier for a fixed number of parties.  The last arrival
/// of a phase publishes the next phase and wakes any blocked waiters; all
/// writes made before arriving are visible to every party after it returns.
class SpinBarrier {
public:
    explicit SpinBarrier(unsigned parties) : _parties(parties) {}
    SpinBarrier(const SpinBarrier&) = delete;
    SpinBarrier& operator=(const SpinBarrier&) = delete;

    void arrive_and_wait();

private:
    const unsigned _parties;
    std::atomic<unsigned> _arrived{0};
    std::atomic<std::uint64_t> _phase{0};
    Mutex _mutex;
    CondVar _wake;
};

/// Fixed-size fork-join pool.  Not re-entrant: run() must not be called
/// from inside a running job, and the pool is owned by one thread at a
/// time (the solver workspace contract).
class TaskPool {
public:
    explicit TaskPool(unsigned threads);
    ~TaskPool();
    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    [[nodiscard]] unsigned threads() const noexcept { return _count; }

    /// Run fn(index) for every index in [0, threads()); fn(0) runs on the
    /// caller.  The first exception thrown by any invocation is rethrown
    /// here after all invocations finished.
    void run(const std::function<void(unsigned)>& fn);

private:
    void worker_main(unsigned index);

    const unsigned _count;
    Mutex _mutex;
    CondVar _work;
    CondVar _done;
    const std::function<void(unsigned)>* _job GUARDED_BY(_mutex) = nullptr;
    std::uint64_t _generation GUARDED_BY(_mutex) = 0;
    unsigned _active GUARDED_BY(_mutex) = 0;
    bool _stopping GUARDED_BY(_mutex) = false;
    std::exception_ptr _error GUARDED_BY(_mutex);
    std::vector<std::thread> _workers;
};

} // namespace aalwines::util
