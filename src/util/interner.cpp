#include "util/interner.hpp"

#include "util/check.hpp"

namespace aalwines {

StringInterner::StringInterner(const StringInterner& other) : _strings(other._strings) {
    _ids.reserve(_strings.size());
    for (Id id = 0; id < _strings.size(); ++id)
        _ids.emplace(std::string_view(_strings[id]), id);
}

StringInterner& StringInterner::operator=(const StringInterner& other) {
    if (this == &other) return *this;
    _strings = other._strings;
    _ids.clear();
    _ids.reserve(_strings.size());
    for (Id id = 0; id < _strings.size(); ++id)
        _ids.emplace(std::string_view(_strings[id]), id);
    return *this;
}

StringInterner::Id StringInterner::intern(std::string_view text) {
    if (auto it = _ids.find(text); it != _ids.end()) return it->second;
    const Id id = static_cast<Id>(_strings.size());
    _strings.emplace_back(text);
    // Keys view into deque elements, whose addresses are stable for the
    // interner's lifetime (deques never move elements on growth).
    _ids.emplace(std::string_view(_strings.back()), id);
    return id;
}

std::optional<StringInterner::Id> StringInterner::find(std::string_view text) const {
    if (auto it = _ids.find(text); it != _ids.end()) return it->second;
    return std::nullopt;
}

const std::string& StringInterner::at(Id id) const {
    AALWINES_CHECK(id < _strings.size(), "unknown interned string id " + std::to_string(id));
    return _strings[id];
}

} // namespace aalwines
