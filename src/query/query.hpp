#pragma once
// Reachability queries  <a> b <c> k  (paper §2.5, Definition 5).
//
// `a` and `c` are regular expressions over labels (with the `ip`, `mpls`,
// `smpls` class abbreviations), `b` is a regular expression over links
// (with `[v#u]`, `[v.if1#u.if2]`, `.` and `[^...]` atoms), and `k` bounds
// the number of failed links.  Queries are parsed against a concrete
// network so atoms resolve to symbol sets immediately.

#include <cstdint>
#include <string>

#include "model/routing.hpp"
#include "nfa/regex.hpp"

namespace aalwines::query {

/// How the engine may approximate this query (optional trailing keyword:
/// `OVER`, `UNDER` or `DUAL`, default DUAL).  OVER answers from the
/// over-approximation alone (a YES may be spurious, flagged in the result
/// note); UNDER answers from the under-approximation alone (a NO is then
/// inconclusive).  DUAL is the paper's combined pipeline.
enum class Mode : std::uint8_t { Dual, Over, Under };

[[nodiscard]] std::string_view to_string(Mode mode);

struct Query {
    nfa::Regex initial_header = nfa::Regex::epsilon(); ///< a — over label ids
    nfa::Regex path = nfa::Regex::epsilon();           ///< b — over link ids
    nfa::Regex final_header = nfa::Regex::epsilon();   ///< c — over label ids
    std::uint64_t max_failures = 0;                    ///< k
    Mode mode = Mode::Dual;
    std::string text;                                  ///< original query text
};

/// Parse a query against `network`.  Unknown router or interface names are
/// errors (parse_error); unknown label names resolve to the empty set (the
/// query is then simply unsatisfiable on that network).
[[nodiscard]] Query parse_query(std::string_view text, const Network& network);

} // namespace aalwines::query
