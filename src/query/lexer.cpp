#include "query/lexer.hpp"

#include <cctype>

namespace aalwines::query {

namespace {
bool is_name_start(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool is_name_core(char c) { return is_name_start(c); }
bool is_name_joiner(char c) { return c == '.' || c == '-' || c == '/'; }
} // namespace

char Cursor::advance() {
    const char c = _text[_pos++];
    if (c == '\n') {
        ++_line;
        _col = 1;
    } else {
        ++_col;
    }
    return c;
}

void Cursor::skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
}

void Cursor::expect(char c) {
    skip_ws();
    if (at_end() || peek() != c) fail(std::string("expected '") + c + "'");
    advance();
}

bool Cursor::try_consume(char c) {
    skip_ws();
    if (!at_end() && peek() == c) {
        advance();
        return true;
    }
    return false;
}

char Cursor::lookahead() {
    skip_ws();
    return peek();
}

bool Cursor::at_name() {
    skip_ws();
    return !at_end() && (is_name_start(peek()) || peek() == '\'');
}

std::string Cursor::name() {
    skip_ws();
    if (at_end()) fail("expected a name");
    std::string out;
    if (peek() == '\'') {
        advance();
        while (!at_end() && peek() != '\'') out.push_back(advance());
        if (at_end()) fail("unterminated quoted name");
        advance();
        return out;
    }
    if (!is_name_start(peek())) fail("expected a name");
    while (!at_end()) {
        const char c = peek();
        if (is_name_core(c)) {
            out.push_back(advance());
        } else if (is_name_joiner(c) && is_name_core(peek_at(1))) {
            out.push_back(advance());
        } else {
            break;
        }
    }
    return out;
}

std::uint64_t Cursor::number() {
    skip_ws();
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
        fail("expected a number");
    std::uint64_t value = 0;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
        value = value * 10 + static_cast<std::uint64_t>(advance() - '0');
    return value;
}

void Cursor::fail(const std::string& message) const {
    detail::fail_parse("query: " + message, {_line, _col});
}

} // namespace aalwines::query
