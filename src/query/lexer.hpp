#pragma once
// Character-level cursor shared by the query parser: tracks line/column,
// skips whitespace, and lexes names with the query language's slightly
// unusual token rules (names may embed '.', '-' and '/' when the characters
// around them are name characters — interface names like `et-1/3/0.2`).

#include <string>
#include <string_view>

#include "util/errors.hpp"

namespace aalwines::query {

class Cursor {
public:
    explicit Cursor(std::string_view text) : _text(text) {}

    [[nodiscard]] bool at_end() const { return _pos >= _text.size(); }
    [[nodiscard]] char peek() const { return at_end() ? '\0' : _text[_pos]; }
    [[nodiscard]] char peek_at(std::size_t offset) const {
        return _pos + offset >= _text.size() ? '\0' : _text[_pos + offset];
    }

    char advance();
    void skip_ws();

    /// Consume `c` (after skipping whitespace) or fail with a parse_error.
    void expect(char c);

    /// True and consumed if the next non-space char is `c`.
    bool try_consume(char c);

    /// Next non-space char without consuming ('\0' at end).
    [[nodiscard]] char lookahead();

    /// A name token: starts with [A-Za-z0-9_$]; may continue with those and
    /// with '.', '-', '/' when followed by another name character.  Also
    /// accepts single-quoted names with no escape processing.
    [[nodiscard]] std::string name();

    /// True when the next non-space character can start a name.
    [[nodiscard]] bool at_name();

    [[nodiscard]] std::uint64_t number();

    [[noreturn]] void fail(const std::string& message) const;

private:
    std::string_view _text;
    std::size_t _pos = 0;
    unsigned _line = 1;
    unsigned _col = 1;
};

} // namespace aalwines::query
