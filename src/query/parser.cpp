#include "query/query.hpp"

#include <algorithm>

#include "query/lexer.hpp"
#include "telemetry/telemetry.hpp"

namespace aalwines::query {

std::string_view to_string(Mode mode) {
    switch (mode) {
        case Mode::Dual: return "DUAL";
        case Mode::Over: return "OVER";
        case Mode::Under: return "UNDER";
    }
    return "?";
}

namespace {

using nfa::Regex;
using nfa::SymbolSet;

/// Resolve one label-atom name to a symbol set (paper §2.5 abbreviations).
SymbolSet resolve_label_name(const Network& network, const std::string& name) {
    const auto& labels = network.labels;
    if (name == "ip") return SymbolSet::of(labels.of_type(LabelType::Ip));
    if (name == "mpls") return SymbolSet::of(labels.of_type(LabelType::Mpls));
    if (name == "smpls") return SymbolSet::of(labels.of_type(LabelType::MplsBos));
    std::vector<nfa::Symbol> ids;
    for (const auto label : labels.find_by_name(name)) ids.push_back(label);
    // Paper convention: bottom-of-stack labels are written with an `s`
    // prefix, so `s40` also matches the MplsBos label named "40".
    if (name.size() > 1 && name.front() == 's')
        if (auto label = labels.find(LabelType::MplsBos, std::string_view(name).substr(1)))
            ids.push_back(*label);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return SymbolSet::of(std::move(ids)); // may be empty: atom matches nothing
}

struct Endpoint {
    bool wildcard = false;
    RouterId router = k_invalid_id;
    std::string interface; ///< empty = any interface
};

class Parser {
public:
    Parser(std::string_view text, const Network& network)
        : _cur(text), _network(network) {}

    Query parse() {
        Query query;
        query.text = std::string(_cur_text_backup);
        _cur.expect('<');
        query.initial_header = parse_alt(Context::Label);
        _cur.expect('>');
        query.path = parse_alt(Context::Link);
        _cur.expect('<');
        query.final_header = parse_alt(Context::Label);
        _cur.expect('>');
        query.max_failures = _cur.number();
        if (_cur.at_name()) {
            const auto mode = _cur.name();
            if (mode == "OVER" || mode == "over") query.mode = Mode::Over;
            else if (mode == "UNDER" || mode == "under") query.mode = Mode::Under;
            else if (mode == "DUAL" || mode == "dual") query.mode = Mode::Dual;
            else _cur.fail("unknown query mode '" + mode + "'");
        }
        _cur.skip_ws();
        if (!_cur.at_end()) _cur.fail("trailing content after query");
        return query;
    }

    void remember_text(std::string_view text) { _cur_text_backup = text; }

private:
    enum class Context { Label, Link };

    Cursor _cur;
    const Network& _network;
    std::string_view _cur_text_backup;

    Regex parse_alt(Context context) {
        std::vector<Regex> branches;
        branches.push_back(parse_concat(context));
        while (_cur.try_consume('|')) branches.push_back(parse_concat(context));
        return Regex::alt(std::move(branches));
    }

    Regex parse_concat(Context context) {
        std::vector<Regex> factors;
        for (;;) {
            const char c = _cur.lookahead();
            const bool at_factor = c == '.' || c == '(' || c == '[' ||
                                   (context == Context::Label && _cur.at_name());
            if (!at_factor) break;
            factors.push_back(parse_repeat(context));
        }
        return Regex::concat(std::move(factors));
    }

    Regex parse_repeat(Context context) {
        Regex atom = parse_atom(context);
        for (;;) {
            if (_cur.try_consume('*')) atom = Regex::star(std::move(atom));
            else if (_cur.try_consume('+')) atom = Regex::plus(std::move(atom));
            else if (_cur.try_consume('?')) atom = Regex::opt(std::move(atom));
            else if (_cur.try_consume('{')) atom = parse_bounds(std::move(atom));
            else return atom;
        }
    }

    /// Bounded repetition r{n}, r{n,} and r{n,m} (language extension).
    Regex parse_bounds(Regex atom) {
        const auto low = _cur.number();
        std::optional<std::uint64_t> high;
        bool open_ended = false;
        if (_cur.try_consume(',')) {
            if (_cur.lookahead() == '}') open_ended = true;
            else high = _cur.number();
        } else {
            high = low;
        }
        _cur.expect('}');
        if (high && *high < low) _cur.fail("repetition bound {n,m} requires n <= m");
        Regex result = Regex::repeat(atom, low);
        if (open_ended) {
            std::vector<Regex> parts;
            parts.push_back(std::move(result));
            parts.push_back(Regex::star(std::move(atom)));
            return Regex::concat(std::move(parts));
        }
        for (std::uint64_t i = low; i < *high; ++i) {
            std::vector<Regex> parts;
            parts.push_back(std::move(result));
            parts.push_back(Regex::opt(atom));
            result = Regex::concat(std::move(parts));
        }
        return result;
    }

    Regex parse_atom(Context context) {
        if (_cur.try_consume('.')) return Regex::atom(SymbolSet::any());
        if (_cur.try_consume('(')) {
            Regex inner = parse_alt(context);
            _cur.expect(')');
            return inner;
        }
        if (_cur.try_consume('[')) {
            const bool complement = _cur.try_consume('^');
            SymbolSet set = context == Context::Label ? parse_label_set() : parse_link_set();
            _cur.expect(']');
            if (complement) {
                // Atom-set complement (the paper's `^`): everything except
                // the listed symbols.
                return Regex::atom(SymbolSet::excluding(
                    set.materialize(static_cast<nfa::Symbol>(domain(context)))));
            }
            return Regex::atom(std::move(set));
        }
        if (context == Context::Label && _cur.at_name())
            return Regex::atom(resolve_label_name(_network, _cur.name()));
        _cur.fail("expected an atom");
    }

    [[nodiscard]] std::size_t domain(Context context) const {
        return context == Context::Label ? _network.labels.size()
                                         : _network.topology.link_count();
    }

    SymbolSet parse_label_set() {
        SymbolSet set = resolve_label_name(_network, _cur.name());
        while (_cur.try_consume(','))
            set = SymbolSet::set_union(set, resolve_label_name(_network, _cur.name()));
        return set;
    }

    SymbolSet parse_link_set() {
        std::vector<nfa::Symbol> links = parse_side_spec();
        while (_cur.try_consume(',')) {
            auto more = parse_side_spec();
            links.insert(links.end(), more.begin(), more.end());
        }
        return SymbolSet::of(std::move(links));
    }

    Endpoint parse_endpoint() {
        Endpoint endpoint;
        if (_cur.try_consume('.')) {
            endpoint.wildcard = true;
            return endpoint;
        }
        const std::string name = _cur.name();
        if (auto router = _network.topology.find_router(name)) {
            endpoint.router = *router;
            return endpoint;
        }
        // Split router.interface at the first dot.
        const auto dot = name.find('.');
        if (dot != std::string::npos) {
            const auto router_part = name.substr(0, dot);
            if (auto router = _network.topology.find_router(router_part)) {
                endpoint.router = *router;
                endpoint.interface = name.substr(dot + 1);
                if (!_network.topology.find_interface(endpoint.router, endpoint.interface))
                    _cur.fail("unknown interface '" + endpoint.interface + "' on router '" +
                              router_part + "'");
                return endpoint;
            }
        }
        _cur.fail("unknown router '" + name + "'");
    }

    std::vector<nfa::Symbol> parse_side_spec() {
        const Endpoint source = parse_endpoint();
        _cur.expect('#');
        const Endpoint target = parse_endpoint();
        std::vector<nfa::Symbol> out;
        const auto& topology = _network.topology;
        for (const auto& link : topology.links()) {
            if (!source.wildcard) {
                if (link.source != source.router) continue;
                if (!source.interface.empty() &&
                    topology.interface(link.source_interface).name != source.interface)
                    continue;
            }
            if (!target.wildcard) {
                if (link.target != target.router) continue;
                if (!target.interface.empty() &&
                    topology.interface(link.target_interface).name != target.interface)
                    continue;
            }
            out.push_back(link.id);
        }
        return out;
    }
};

} // namespace

Query parse_query(std::string_view text, const Network& network) {
    AALWINES_SPAN("parse_query");
    Parser parser(text, network);
    parser.remember_text(text);
    auto query = parser.parse();
    telemetry::count(telemetry::Counter::queries_parsed);
    return query;
}

} // namespace aalwines::query
