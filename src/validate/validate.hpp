#pragma once
// Deep well-formedness checkers for the core data structures — the runtime
// prong of the correctness harness (docs/CORRECTNESS.md).
//
// Every checker *reports* violations into a Report instead of throwing, so a
// single pass over a corrupted structure surfaces every problem at once and
// callers (tests, `aalwines --validate`, CI) decide how to react.  The
// checkers deliberately re-derive each invariant from first principles
// rather than calling the structure's own consistency helpers: an invariant
// and its checker failing together is exactly the regression this module
// exists to catch.
//
// Component-level overloads (taking raw rule vectors and counts) exist so
// mutation tests can corrupt copies of valid structures and prove each
// checker actually fires.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "model/routing.hpp"
#include "nfa/nfa.hpp"
#include "pda/pautomaton.hpp"
#include "pda/pda.hpp"

namespace aalwines::validate {

enum class Severity : std::uint8_t { Warning, Error };

[[nodiscard]] std::string_view to_string(Severity severity);

/// One violation: which component of which structure broke, and how.
struct Issue {
    Severity severity = Severity::Error;
    std::string component; ///< "topology", "labels", "routing", "pda", ...
    std::string message;
};

class Report {
public:
    void error(std::string_view component, std::string message);
    void warning(std::string_view component, std::string message);
    void merge(const Report& other);

    /// True when no *error*-severity issue was recorded (warnings are fine).
    [[nodiscard]] bool ok() const noexcept { return _errors == 0; }
    [[nodiscard]] std::size_t error_count() const noexcept { return _errors; }
    [[nodiscard]] const std::vector<Issue>& issues() const noexcept { return _issues; }

    /// One line per issue: "error(component): message".
    [[nodiscard]] std::string to_string() const;

private:
    std::vector<Issue> _issues;
    std::size_t _errors = 0;
};

/// Topology (paper, Definition 1): interface/link referential integrity and
/// the out/in adjacency indexes listing every link exactly once.
void check_topology(const Topology& topology, Report& report);

/// Label alphabet: the L_M / L_M⊥ / L_IP partition tags are valid and the
/// (type, name) interning round-trips to the same dense id.
void check_labels(const LabelTable& labels, Report& report);

/// Routing table τ (paper, Definition 2) against topology and labels: every
/// entry's links exist, each rule's out-link leaves the router its in-link
/// enters, operation labels are interned and stratum-applicable.  Vestigial
/// structure (entries with no rules, trailing empty TE groups) is a warning.
void check_routing(const Network& network, Report& report);

/// All of the above on one network.
[[nodiscard]] Report check_network(const Network& network);

/// PDA rules (paper §4.1 normal form): state ids in range, precondition and
/// operand symbols inside the stack alphabet, per-op operand shape.
/// Component-level so tests can corrupt a copied rule vector.
void check_pda_rules(const std::vector<pda::Rule>& rules, std::size_t state_count,
                     pda::Symbol alphabet_size, Report& report);
[[nodiscard]] Report check_pda(const pda::Pda& pda);

/// P-automaton: transition endpoints in range, no definitely-empty edge
/// labels, ε-transitions go control → non-control, provenance references
/// resolve, and the per-state transition index is a partition of the
/// transition set.
[[nodiscard]] Report check_pautomaton(const pda::PAutomaton& automaton);

/// ε-free NFA (post ε-elimination): edge targets in range, no
/// definitely-empty edge sets, at least one initial state.
void check_nfa(const nfa::Nfa& nfa, std::string_view component, Report& report);

} // namespace aalwines::validate
