#pragma once
// Witness-trace validation: replay every reconstructed trace through the
// concrete MPLS dataplane semantics (model/simulator.hpp) and re-accumulate
// the atomic quantities independently of the engine's weighted-PDA pipeline.
//
// The engine derives traces from P-automaton provenance; the replayer
// re-derives the greedy failure set of Definition 4 from the routing table,
// then asks the Simulator — a completely separate implementation of the
// forwarding semantics — to reproduce each step under that failure set.  A
// trace that the engine reports but the dataplane cannot execute is a
// reconstruction bug, whichever side is wrong.

#include <cstdint>
#include <optional>

#include "model/quantity.hpp"
#include "model/simulator.hpp"
#include "query/query.hpp"
#include "validate/validate.hpp"
#include "verify/engine.hpp"

namespace aalwines::validate {

/// Quantities re-accumulated while replaying a witness, plus the minimal
/// failure set F enabling it (paper §3 / Definition 4).
struct ReplayAccumulation {
    std::uint64_t links = 0;    ///< trace length n
    std::uint64_t hops = 0;     ///< steps over non-self-loop links
    std::uint64_t distance = 0; ///< Σ d(e_i)
    std::uint64_t failures = 0; ///< Σ_i |failed(i)|
    std::uint64_t tunnels = 0;  ///< Σ max(0, |h_{i+1}| - |h_i|)
    FailureSet required_failures;

    [[nodiscard]] std::uint64_t of(Quantity quantity) const;
};

/// Replay `trace` through the Simulator under the re-derived failure set.
/// Reports every violation (invalid header, no matching rule, dataplane
/// cannot reproduce a step, ...) and returns nullopt when replay failed.
[[nodiscard]] std::optional<ReplayAccumulation> replay_trace(const Network& network,
                                                             const Trace& trace,
                                                             Report& report);

/// Full witness check against a query: the trace replays, its failure set
/// fits the budget k, and the initial header, link sequence and final header
/// are in the languages of the query's three regular expressions.
void check_witness(const Network& network, const query::Query& query, const Trace& trace,
                   Report& report);

/// Validate a complete engine result: every collected witness passes
/// check_witness, the canonical trace is among the witnesses, and — when the
/// query was weighted — the reported weight vector equals the re-evaluation
/// of the canonical trace (model/quantity.hpp).
[[nodiscard]] Report check_result(const Network& network, const query::Query& query,
                                  const verify::VerifyResult& result,
                                  const WeightExpr* weights = nullptr);

} // namespace aalwines::validate
