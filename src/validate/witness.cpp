#include "validate/witness.hpp"

#include <algorithm>

#include "model/header.hpp"

namespace aalwines::validate {

namespace {

std::string format_weight(const std::vector<std::uint64_t>& weight) {
    std::string out = "(";
    for (std::size_t i = 0; i < weight.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(weight[i]);
    }
    return out + ")";
}

/// Header word as the query regexes read it: top of stack first.
std::vector<nfa::Symbol> top_first_word(const Header& header) {
    return {header.rbegin(), header.rend()};
}

} // namespace

std::uint64_t ReplayAccumulation::of(Quantity quantity) const {
    switch (quantity) {
        case Quantity::Links: return links;
        case Quantity::Hops: return hops;
        case Quantity::Distance: return distance;
        case Quantity::Failures: return failures;
        case Quantity::Tunnels: return tunnels;
    }
    return 0;
}

std::optional<ReplayAccumulation> replay_trace(const Network& network, const Trace& trace,
                                               Report& report) {
    const auto& topology = network.topology;
    const auto& labels = network.labels;

    if (trace.empty()) {
        report.error("witness", "empty trace");
        return std::nullopt;
    }
    for (std::size_t i = 0; i < trace.entries.size(); ++i) {
        const auto& entry = trace.entries[i];
        if (entry.link >= topology.link_count()) {
            report.error("witness", "entry " + std::to_string(i) +
                                        " traverses unknown link id " +
                                        std::to_string(entry.link));
            return std::nullopt;
        }
        if (!is_valid_header(labels, entry.header)) {
            report.error("witness", "entry " + std::to_string(i) +
                                        " carries invalid header " +
                                        display_header(labels, entry.header));
            return std::nullopt;
        }
    }

    // Re-derive the greedy failure set of Definition 4: per step, the first
    // TE group containing a rule that reproduces the observed rewrite is the
    // one the router used; every out-link of the groups above it must have
    // failed for that group to be consulted.
    ReplayAccumulation acc;
    for (std::size_t i = 0; i + 1 < trace.entries.size(); ++i) {
        const auto& current = trace.entries[i];
        const auto& next = trace.entries[i + 1];
        const auto* groups = network.routing.entry(current.link, current.header.back());
        if (groups == nullptr) {
            report.error("witness", "step " + std::to_string(i) +
                                        ": no routing entry for (" +
                                        topology.describe_link(current.link) + ", " +
                                        labels.display(current.header.back()) + ")");
            return std::nullopt;
        }
        bool matched = false;
        FailureSet failed_here;
        for (const auto& group : *groups) {
            for (const auto& rule : group) {
                if (rule.out_link != next.link) continue;
                const auto rewritten = apply_ops(labels, current.header, rule.ops);
                if (rewritten && *rewritten == next.header) {
                    matched = true;
                    break;
                }
            }
            if (matched) break;
            // Administratively-down links are failed for free and never
            // charge the budget, so they are not derived into F.
            for (const auto& rule : group)
                if (topology.link_up(rule.out_link)) failed_here.insert(rule.out_link);
        }
        if (!matched) {
            report.error("witness", "step " + std::to_string(i) +
                                        ": no forwarding rule rewrites " +
                                        display_header(labels, current.header) + " to " +
                                        display_header(labels, next.header) + " towards " +
                                        topology.describe_link(next.link));
            return std::nullopt;
        }
        acc.failures += failed_here.size();
        acc.required_failures.insert(failed_here.begin(), failed_here.end());
    }

    for (const auto& entry : trace.entries) {
        if (!topology.link_up(entry.link)) {
            report.error("witness", "link " + topology.describe_link(entry.link) +
                                        " is traversed but administratively down");
            return std::nullopt;
        }
        if (acc.required_failures.contains(entry.link)) {
            report.error("witness", "link " + topology.describe_link(entry.link) +
                                        " is both traversed and required to fail");
            return std::nullopt;
        }
    }

    // Independent dataplane replay: with exactly F failed, the Simulator's
    // first-active-group semantics must offer a choice reproducing each step.
    const Simulator simulator(network, acc.required_failures);
    for (std::size_t i = 0; i + 1 < trace.entries.size(); ++i) {
        const auto& current = trace.entries[i];
        const auto& next = trace.entries[i + 1];
        bool reproduced = false;
        for (const auto& rule : simulator.active_choices(current.link, current.header)) {
            const auto stepped = simulator.step(current, rule);
            if (stepped && *stepped == next) {
                reproduced = true;
                break;
            }
        }
        if (!reproduced) {
            report.error("witness",
                         "step " + std::to_string(i) +
                             ": the dataplane simulator cannot reproduce the step under " +
                             std::to_string(acc.required_failures.size()) +
                             " required failures");
            return std::nullopt;
        }
    }

    acc.links = trace.size();
    for (const auto& entry : trace.entries) {
        const auto& link = topology.link(entry.link);
        if (link.source != link.target) ++acc.hops;
        acc.distance += link.distance;
    }
    for (std::size_t i = 0; i + 1 < trace.entries.size(); ++i) {
        const auto current = trace.entries[i].header.size();
        const auto next = trace.entries[i + 1].header.size();
        if (next > current) acc.tunnels += next - current;
    }
    return acc;
}

void check_witness(const Network& network, const query::Query& query, const Trace& trace,
                   Report& report) {
    const auto replay = replay_trace(network, trace, report);
    if (!replay) return;

    if (replay->required_failures.size() > query.max_failures)
        report.error("witness", "trace needs " +
                                    std::to_string(replay->required_failures.size()) +
                                    " failed links, query budget is " +
                                    std::to_string(query.max_failures));

    const auto initial = nfa::Nfa::compile(query.initial_header);
    const auto path = nfa::Nfa::compile(query.path);
    const auto final_header = nfa::Nfa::compile(query.final_header);
    check_nfa(initial, "query.initial", report);
    check_nfa(path, "query.path", report);
    check_nfa(final_header, "query.final", report);

    if (!initial.accepts(top_first_word(trace.entries.front().header)))
        report.error("witness", "initial header " +
                                    display_header(network.labels,
                                                   trace.entries.front().header) +
                                    " is not in the language of <a>");
    std::vector<nfa::Symbol> link_word;
    link_word.reserve(trace.size());
    for (const auto& entry : trace.entries) link_word.push_back(entry.link);
    if (!path.accepts(link_word))
        report.error("witness", "link sequence is not in the language of the path regex");
    if (!final_header.accepts(top_first_word(trace.entries.back().header)))
        report.error("witness", "final header " +
                                    display_header(network.labels,
                                                   trace.entries.back().header) +
                                    " is not in the language of <c>");
}

Report check_result(const Network& network, const query::Query& query,
                    const verify::VerifyResult& result, const WeightExpr* weights) {
    Report report;
    if (result.answer != verify::Answer::Yes) {
        if (result.trace)
            report.error("result", "answer is " +
                                       std::string(verify::to_string(result.answer)) +
                                       " but a witness trace was attached");
        return report;
    }
    if (!result.trace) return report; // witness reconstruction not requested

    check_witness(network, query, *result.trace, report);
    for (std::size_t i = 0; i < result.witnesses.size(); ++i) {
        if (result.witnesses[i] == *result.trace) continue; // already checked
        Report witness_report;
        check_witness(network, query, result.witnesses[i], witness_report);
        if (!witness_report.ok())
            report.error("result", "witness " + std::to_string(i) + " fails replay");
        report.merge(witness_report);
    }
    if (!result.witnesses.empty() &&
        std::find(result.witnesses.begin(), result.witnesses.end(), *result.trace) ==
            result.witnesses.end())
        report.error("result", "canonical trace is missing from the witness list");

    if (weights != nullptr && !weights->empty() && !result.weight.empty()) {
        const auto expected = evaluate(network, *result.trace, *weights);
        if (expected != result.weight)
            report.error("result", "reported weight " + format_weight(result.weight) +
                                       " does not match the trace re-evaluation " +
                                       format_weight(expected));
    }
    return report;
}

} // namespace aalwines::validate
