#include "validate/validate.hpp"

#include <unordered_set>

namespace aalwines::validate {

std::string_view to_string(Severity severity) {
    switch (severity) {
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

void Report::error(std::string_view component, std::string message) {
    _issues.push_back({Severity::Error, std::string(component), std::move(message)});
    ++_errors;
}

void Report::warning(std::string_view component, std::string message) {
    _issues.push_back({Severity::Warning, std::string(component), std::move(message)});
}

void Report::merge(const Report& other) {
    for (const auto& issue : other._issues) _issues.push_back(issue);
    _errors += other._errors;
}

std::string Report::to_string() const {
    std::string out;
    for (const auto& issue : _issues) {
        out += validate::to_string(issue.severity);
        out += "(";
        out += issue.component;
        out += "): ";
        out += issue.message;
        out += "\n";
    }
    return out;
}

void check_topology(const Topology& topology, Report& report) {
    const auto routers = topology.router_count();
    const auto links = topology.link_count();
    const auto interfaces = topology.interface_count();

    for (InterfaceId i = 0; i < interfaces; ++i) {
        const auto& iface = topology.interface(i);
        if (iface.router >= routers)
            report.error("topology", "interface " + std::to_string(i) +
                                         " ('" + iface.name +
                                         "') belongs to unknown router id " +
                                         std::to_string(iface.router));
    }

    for (LinkId id = 0; id < links; ++id) {
        const auto& link = topology.link(id);
        const auto where = "link " + std::to_string(id);
        if (link.id != id)
            report.error("topology", where + " stores mismatched id " +
                                         std::to_string(link.id));
        if (link.source >= routers || link.target >= routers) {
            report.error("topology", where + " references unknown router");
            continue;
        }
        if (link.source_interface >= interfaces || link.target_interface >= interfaces) {
            report.error("topology", where + " references unknown interface");
            continue;
        }
        // Interface/link symmetry: s(e)'s outgoing interface must sit on
        // s(e), t(e)'s incoming interface on t(e).
        if (topology.interface(link.source_interface).router != link.source)
            report.error("topology",
                         where + ": source interface does not belong to source router '" +
                             topology.router_name(link.source) + "'");
        if (topology.interface(link.target_interface).router != link.target)
            report.error("topology",
                         where + ": target interface does not belong to target router '" +
                             topology.router_name(link.target) + "'");
    }

    // Adjacency indexes: out_links/in_links must list every link exactly
    // once, under its source/target router respectively.
    std::size_t listed_out = 0;
    std::size_t listed_in = 0;
    std::unordered_set<LinkId> seen;
    for (RouterId r = 0; r < routers; ++r) {
        seen.clear();
        for (const auto id : topology.out_links(r)) {
            ++listed_out;
            if (id >= links) {
                report.error("topology", "out-link index of router '" +
                                             topology.router_name(r) +
                                             "' lists unknown link id " + std::to_string(id));
                continue;
            }
            if (!seen.insert(id).second)
                report.error("topology", "out-link index of router '" +
                                             topology.router_name(r) + "' lists link " +
                                             std::to_string(id) + " twice");
            if (topology.link(id).source != r)
                report.error("topology", "link " + std::to_string(id) +
                                             " is indexed under router '" +
                                             topology.router_name(r) +
                                             "' but does not leave it");
        }
        seen.clear();
        for (const auto id : topology.in_links(r)) {
            ++listed_in;
            if (id >= links) {
                report.error("topology", "in-link index of router '" +
                                             topology.router_name(r) +
                                             "' lists unknown link id " + std::to_string(id));
                continue;
            }
            if (!seen.insert(id).second)
                report.error("topology", "in-link index of router '" +
                                             topology.router_name(r) + "' lists link " +
                                             std::to_string(id) + " twice");
            if (topology.link(id).target != r)
                report.error("topology", "link " + std::to_string(id) +
                                             " is indexed under router '" +
                                             topology.router_name(r) +
                                             "' but does not enter it");
        }
    }
    if (listed_out != links)
        report.error("topology", "out-link indexes list " + std::to_string(listed_out) +
                                     " links, topology has " + std::to_string(links));
    if (listed_in != links)
        report.error("topology", "in-link indexes list " + std::to_string(listed_in) +
                                     " links, topology has " + std::to_string(links));

    // Router names resolve back to their own id.
    for (RouterId r = 0; r < routers; ++r) {
        const auto found = topology.find_router(topology.router_name(r));
        if (!found || *found != r)
            report.error("topology", "router name '" + topology.router_name(r) +
                                         "' does not resolve back to id " +
                                         std::to_string(r));
    }
}

void check_labels(const LabelTable& labels, Report& report) {
    for (Label label = 0; label < labels.size(); ++label) {
        const auto type = labels.type_of(label);
        if (type != LabelType::Mpls && type != LabelType::MplsBos && type != LabelType::Ip) {
            report.error("labels", "label " + std::to_string(label) +
                                       " has an invalid stratum tag");
            continue;
        }
        // Interning round-trip: (type, name) must map back to this id —
        // catches duplicated or aliased entries in the dense id space.
        const auto found = labels.find(type, labels.name_of(label));
        if (!found || *found != label)
            report.error("labels", "label '" + labels.display(label) +
                                       "' does not intern back to id " +
                                       std::to_string(label));
    }
}

void check_routing(const Network& network, Report& report) {
    const auto& topology = network.topology;
    const auto& labels = network.labels;
    const auto links = topology.link_count();

    network.routing.for_each([&](LinkId in_link, Label label, const RoutingEntry& groups) {
        const auto where = "entry (link " + std::to_string(in_link) + ", label " +
                           std::to_string(label) + ")";
        if (in_link >= links) {
            report.error("routing", where + ": unknown in-link");
            return;
        }
        if (label >= labels.size()) {
            report.error("routing", where + ": label outside the alphabet");
            return;
        }
        const auto at_router = topology.link(in_link).target;

        std::size_t rules_total = 0;
        std::size_t last_nonempty = 0;
        for (std::size_t priority = 0; priority < groups.size(); ++priority) {
            if (!groups[priority].empty()) last_nonempty = priority + 1;
            rules_total += groups[priority].size();
            for (const auto& rule : groups[priority]) {
                const auto rule_where =
                    where + " group " + std::to_string(priority + 1);
                if (rule.out_link >= links) {
                    report.error("routing", rule_where + ": unknown out-link id " +
                                                std::to_string(rule.out_link));
                    continue;
                }
                if (topology.link(rule.out_link).source != at_router)
                    report.error("routing",
                                 rule_where + ": out-link " +
                                     topology.describe_link(rule.out_link) +
                                     " does not leave router '" +
                                     topology.router_name(at_router) + "'");
                for (const auto& op : rule.ops) {
                    if (op.kind == Op::Kind::Pop) continue;
                    if (op.label >= labels.size()) {
                        report.error("routing", rule_where +
                                                    ": operation label outside the alphabet");
                        continue;
                    }
                    // An IP label can never be pushed onto a valid header
                    // (H = L_IP ∪ L_M* L_M⊥ L_IP) — such a rule is dead.
                    if (op.kind == Op::Kind::Push &&
                        labels.type_of(op.label) == LabelType::Ip)
                        report.error("routing", rule_where + ": pushes IP label '" +
                                                    labels.display(op.label) +
                                                    "', which no valid header admits");
                }
            }
        }
        if (rules_total == 0)
            report.warning("routing", where + " has no forwarding rules");
        else if (last_nonempty < groups.size())
            report.warning("routing", where + " has trailing empty TE groups");
    });
}

Report check_network(const Network& network) {
    Report report;
    check_topology(network.topology, report);
    check_labels(network.labels, report);
    check_routing(network, report);
    return report;
}

void check_pda_rules(const std::vector<pda::Rule>& rules, std::size_t state_count,
                     pda::Symbol alphabet_size, Report& report) {
    using pda::PreSpec;
    using pda::Rule;
    for (std::size_t id = 0; id < rules.size(); ++id) {
        const auto& rule = rules[id];
        const auto where = "rule " + std::to_string(id);
        if (rule.from >= state_count)
            report.error("pda", where + ": dangling from-state " +
                                    std::to_string(rule.from));
        if (rule.to >= state_count)
            report.error("pda", where + ": dangling to-state " + std::to_string(rule.to));
        switch (rule.pre.kind) {
            case PreSpec::Kind::Concrete:
                if (rule.pre.symbol >= alphabet_size)
                    report.error("pda", where + ": precondition symbol " +
                                            std::to_string(rule.pre.symbol) +
                                            " outside the alphabet");
                break;
            case PreSpec::Kind::Class:
                if (rule.pre.cls == pda::k_no_class)
                    report.error("pda", where + ": class precondition without a class");
                break;
            case PreSpec::Kind::Any: break;
        }
        switch (rule.op) {
            case Rule::OpKind::Pop: break;
            case Rule::OpKind::Swap:
                if (rule.label1 >= alphabet_size)
                    report.error("pda", where + ": swap writes symbol " +
                                            std::to_string(rule.label1) +
                                            " outside the alphabet");
                break;
            case Rule::OpKind::Push:
                if (rule.label1 >= alphabet_size)
                    report.error("pda", where + ": push top symbol " +
                                            std::to_string(rule.label1) +
                                            " outside the alphabet");
                if (rule.label2 >= alphabet_size && rule.label2 != pda::k_same_symbol)
                    report.error("pda", where + ": push below-top symbol " +
                                            std::to_string(rule.label2) +
                                            " outside the alphabet");
                break;
        }
    }
}

Report check_pda(const pda::Pda& pda) {
    Report report;
    pda.materialize_all(); // a lazy PDA's structural checks must cover every rule
    check_pda_rules(pda.rules(), pda.state_count(), pda.alphabet_size(), report);
    return report;
}

Report check_pautomaton(const pda::PAutomaton& automaton) {
    Report report;
    const auto states = automaton.state_count();
    const auto rule_count = automaton.pda().rule_count();
    const auto trans_count = automaton.transition_count();
    const auto eps_count = automaton.epsilon_count();

    auto check_prov = [&](const pda::Provenance& prov, const std::string& where) {
        using Kind = pda::Provenance::Kind;
        if (prov.kind == Kind::Initial) return;
        if (prov.rule != UINT32_MAX && prov.rule >= rule_count)
            report.error("pautomaton",
                         where + ": provenance references unknown rule " +
                             std::to_string(prov.rule));
        // `a` is an ε-id for PostCombine, a transition id otherwise.
        const auto a_limit =
            prov.kind == Kind::PostCombine ? eps_count : trans_count;
        if (prov.a != pda::k_no_trans && prov.a >= a_limit)
            report.error("pautomaton",
                         where + ": provenance references unknown predecessor " +
                             std::to_string(prov.a));
        if (prov.b != pda::k_no_trans && prov.b >= trans_count)
            report.error("pautomaton",
                         where + ": provenance references unknown predecessor " +
                             std::to_string(prov.b));
    };

    for (pda::TransId id = 0; id < trans_count; ++id) {
        const auto& trans = automaton.transition(id);
        const auto where = "transition " + std::to_string(id);
        if (trans.from >= states || trans.to >= states) {
            report.error("pautomaton", where + ": dangling endpoint");
            continue;
        }
        if (!trans.label.is_concrete() && trans.label.set.is_empty_set())
            report.error("pautomaton", where + ": definitely-empty edge label");
        if (trans.weight.is_infinite())
            report.error("pautomaton", where + ": infinite weight on a kept transition");
        check_prov(trans.prov, where);
    }

    for (std::uint32_t id = 0; id < eps_count; ++id) {
        const auto& eps = automaton.epsilon(id);
        const auto where = "epsilon " + std::to_string(id);
        if (eps.from >= states || eps.to >= states) {
            report.error("pautomaton", where + ": dangling endpoint");
            continue;
        }
        // post* ε-transitions always leave a control state and never enter
        // one (solver.hpp); anything else breaks witness reconstruction.
        if (!automaton.is_control_state(eps.from))
            report.error("pautomaton", where + ": leaves a non-control state");
        if (automaton.is_control_state(eps.to))
            report.error("pautomaton", where + ": enters a control state");
        check_prov(eps.prov, where);
    }

    // The per-state transition index must partition the transition set.
    std::size_t listed = 0;
    for (pda::StateId state = 0; state < states; ++state) {
        for (const auto id : automaton.transitions_from(state)) {
            ++listed;
            if (id >= trans_count) {
                report.error("pautomaton", "state " + std::to_string(state) +
                                               " indexes unknown transition " +
                                               std::to_string(id));
                continue;
            }
            if (automaton.transition(id).from != state)
                report.error("pautomaton", "transition " + std::to_string(id) +
                                               " is indexed under state " +
                                               std::to_string(state) +
                                               " but leaves state " +
                                               std::to_string(automaton.transition(id).from));
        }
    }
    if (listed != trans_count)
        report.error("pautomaton", "state indexes list " + std::to_string(listed) +
                                       " transitions, automaton has " +
                                       std::to_string(trans_count));
    return report;
}

void check_nfa(const nfa::Nfa& nfa, std::string_view component, Report& report) {
    const auto size = nfa.size();
    if (nfa.initial().empty())
        report.error(component, "NFA has no initial state");
    for (const auto initial : nfa.initial())
        if (initial >= size)
            report.error(component,
                         "initial state " + std::to_string(initial) + " out of range");
    for (std::size_t state = 0; state < size; ++state) {
        for (const auto& edge : nfa.states()[state].edges) {
            if (edge.target >= size)
                report.error(component, "state " + std::to_string(state) +
                                            " has an edge to unknown state " +
                                            std::to_string(edge.target));
            if (edge.symbols.is_empty_set())
                report.error(component, "state " + std::to_string(state) +
                                            " has a definitely-empty edge set");
        }
    }
}

} // namespace aalwines::validate
