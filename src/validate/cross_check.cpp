#include "validate/cross_check.hpp"

namespace aalwines::validate {

namespace {

using verify::Answer;

bool conclusive(Answer answer) { return answer != Answer::Inconclusive; }

void compare_answers(Answer a, std::string_view engine_a, Answer b,
                     std::string_view engine_b, Report& report) {
    if (conclusive(a) && conclusive(b) && a != b)
        report.error("cross-check", std::string(engine_a) + " answers " +
                                        std::string(verify::to_string(a)) + " but " +
                                        std::string(engine_b) + " answers " +
                                        std::string(verify::to_string(b)));
}

std::string format_weight(const std::vector<std::uint64_t>& weight) {
    std::string out = "(";
    for (std::size_t i = 0; i < weight.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(weight[i]);
    }
    return out + ")";
}

} // namespace

std::uint64_t exact_scenario_count(std::uint64_t links, std::uint64_t k) {
    std::uint64_t total = 0;
    std::uint64_t choose = 1; // C(links, i)
    for (std::uint64_t i = 0; i <= std::min(links, k); ++i) {
        if (total > UINT64_MAX - choose) return UINT64_MAX;
        total += choose;
        if (i == links) break;
        // C(links, i+1) = C(links, i) * (links - i) / (i + 1)
        const auto factor = links - i;
        if (choose > UINT64_MAX / factor) return UINT64_MAX;
        choose = choose * factor / (i + 1);
    }
    return total;
}

CrossCheckOutcome cross_check(const Network& network, const query::Query& query,
                              const CrossCheckOptions& options) {
    CrossCheckOutcome outcome;
    const bool weighted = options.weights != nullptr && !options.weights->empty();

    verify::VerifyOptions base;
    base.engine = weighted ? verify::EngineKind::Weighted : verify::EngineKind::Dual;
    base.weights = options.weights;
    base.max_iterations = options.max_iterations;
    outcome.dual = verify::verify(network, query, base);
    outcome.report.merge(check_result(network, query, outcome.dual, options.weights));

    if (!weighted) {
        auto moped_options = base;
        moped_options.engine = verify::EngineKind::Moped;
        outcome.moped = verify::verify(network, query, moped_options);
        outcome.report.merge(check_result(network, query, *outcome.moped));
    }

    if (options.deep) {
        const auto scenarios =
            exact_scenario_count(network.topology.link_count(), query.max_failures);
        if (scenarios <= options.max_exact_scenarios) {
            auto exact_options = base;
            exact_options.engine = verify::EngineKind::Exact;
            outcome.exact = verify::verify(network, query, exact_options);
            outcome.report.merge(
                check_result(network, query, *outcome.exact, options.weights));
        } else {
            outcome.report.warning("cross-check",
                                   "exact engine skipped: " + std::to_string(scenarios) +
                                       " failure scenarios exceed the gate of " +
                                       std::to_string(options.max_exact_scenarios));
        }
    }

    if (query.mode != query::Mode::Dual) {
        outcome.report.warning("cross-check",
                               "query mode " + std::string(to_string(query.mode)) +
                                   " is approximate by design; engine answers were "
                                   "not compared");
        return outcome;
    }

    const auto dual_name = weighted ? "weighted" : "dual";
    if (outcome.moped)
        compare_answers(outcome.dual.answer, dual_name, outcome.moped->answer, "moped",
                        outcome.report);
    if (outcome.exact) {
        // Exact is conclusive ground truth: an inconclusive dual answer is
        // fine, a conclusive disagreement is not.
        compare_answers(outcome.dual.answer, dual_name, outcome.exact->answer, "exact",
                        outcome.report);
        if (outcome.moped)
            compare_answers(outcome.moped->answer, "moped", outcome.exact->answer,
                            "exact", outcome.report);
        // Both engines minimise the same lexicographic objective, so their
        // witness weights must coincide exactly.
        if (weighted && outcome.dual.answer == Answer::Yes &&
            outcome.exact->answer == Answer::Yes &&
            outcome.dual.weight != outcome.exact->weight)
            outcome.report.error("cross-check",
                                 std::string("weighted minimal weight ") +
                                     format_weight(outcome.dual.weight) +
                                     " differs from exact minimal weight " +
                                     format_weight(outcome.exact->weight));
    }
    return outcome;
}

} // namespace aalwines::validate
