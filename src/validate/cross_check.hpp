#pragma once
// Differential cross-engine checking: run the same query through the dual
// (or weighted), Moped-baseline and exact engines and flag any conclusive
// disagreement.  All engines are sound on conclusive answers — over- and
// under-approximation only widen the Inconclusive band — so a YES/NO split
// between any two of them is a bug in one of the pipelines.
//
// The exact engine enumerates every failure scenario (exponential in k), so
// deep checks gate it on the scenario count; the Moped baseline cannot carry
// weights and is skipped for weighted queries.

#include <cstdint>
#include <optional>

#include "validate/witness.hpp"

namespace aalwines::validate {

struct CrossCheckOptions {
    /// Minimisation objective; non-null selects the weighted engine.
    const WeightExpr* weights = nullptr;
    /// Also run the exact scenario-enumerating engine (when tractable).
    bool deep = false;
    /// Skip the exact engine above this many failure scenarios Σ C(|E|, i).
    std::uint64_t max_exact_scenarios = 2048;
    /// Per-saturation iteration cap forwarded to every engine (0 = none).
    std::size_t max_iterations = 0;
};

struct CrossCheckOutcome {
    verify::VerifyResult dual;                 ///< dual or weighted engine
    std::optional<verify::VerifyResult> moped; ///< absent for weighted queries
    std::optional<verify::VerifyResult> exact; ///< deep mode, within the gate
    Report report;

    [[nodiscard]] bool ok() const { return report.ok(); }
};

/// Number of failure scenarios the exact engine would enumerate for `links`
/// directed links under budget `k`, saturating at UINT64_MAX.
[[nodiscard]] std::uint64_t exact_scenario_count(std::uint64_t links, std::uint64_t k);

/// Run the engines, validate every YES witness via check_result, and compare
/// answers (and, for weighted queries, minimal weight vectors).  Conclusive
/// comparisons are only meaningful for DUAL-mode queries; OVER/UNDER modes
/// are approximate by design and downgrade to a warning.
[[nodiscard]] CrossCheckOutcome cross_check(const Network& network,
                                            const query::Query& query,
                                            const CrossCheckOptions& options = {});

} // namespace aalwines::validate
