#pragma once
// Shared helpers for the benchmark binaries.

#include <chrono>
#include <cstdlib>
#include <string>

#include "model/quantity.hpp"
#include "synthesis/networks.hpp"
#include "synthesis/queries.hpp"
#include "verify/engine.hpp"

namespace aalwines::bench {

/// One timed verification; returns (answer, seconds).
struct RunOutcome {
    verify::Answer answer = verify::Answer::Inconclusive;
    double seconds = 0.0;
};

inline RunOutcome run_engine(const Network& network, const query::Query& query,
                             verify::EngineKind engine, const WeightExpr* weights,
                             std::size_t max_iterations = 0) {
    verify::VerifyOptions options;
    options.engine = engine;
    options.weights = weights;
    options.max_iterations = max_iterations;
    const auto start = std::chrono::steady_clock::now();
    const auto result = verify::verify(network, query, options);
    const auto seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return {result.answer, seconds};
}

/// Integer knob from the environment, with default.
inline std::size_t env_size(const char* name, std::size_t fallback) {
    if (const char* value = std::getenv(name)) {
        const auto parsed = std::strtoull(value, nullptr, 10);
        if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return fallback;
}

inline bool env_flag(const char* name) {
    const char* value = std::getenv(name);
    return value != nullptr && value[0] != '\0' && value[0] != '0';
}

} // namespace aalwines::bench
