#pragma once
// Shared helpers for the benchmark binaries.
//
// Every bench accepts `--json FILE` (stripped from argv before google
// benchmark sees it): each run_engine() call is recorded as a sample and the
// report — per-query latency stats, telemetry counter totals, peak RSS — is
// written as JSON on exit.  Schema: docs/OBSERVABILITY.md.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "model/quantity.hpp"
#include "synthesis/networks.hpp"
#include "synthesis/queries.hpp"
#include "telemetry/telemetry.hpp"
#include "verify/engine.hpp"

namespace aalwines::bench {

/// One timed verification; returns (answer, seconds).
struct RunOutcome {
    verify::Answer answer = verify::Answer::Inconclusive;
    double seconds = 0.0;
};

struct Sample {
    std::string label;
    double seconds = 0.0;
    std::string answer;
};

namespace detail {
struct SampleStore {
    std::mutex mutex;
    std::vector<Sample> samples;
};
inline SampleStore& sample_store() {
    static SampleStore store;
    return store;
}
} // namespace detail

inline void record_sample(std::string label, double seconds, verify::Answer answer) {
    auto& store = detail::sample_store();
    const std::lock_guard lock(store.mutex);
    store.samples.push_back({std::move(label), seconds, std::string(to_string(answer))});
}

/// Translation mode for every run_engine call, from the environment:
/// AALWINES_BENCH_TRANSLATION = lazy | eager | auto (default auto — the
/// production per-engine default).  Lets scripts/bench-ci run one binary
/// under both modes without doubling the registered case list.
inline verify::TranslationMode env_translation_mode() {
    const char* value = std::getenv("AALWINES_BENCH_TRANSLATION");
    if (value == nullptr) return verify::TranslationMode::Auto;
    const std::string_view mode(value);
    if (mode == "lazy") return verify::TranslationMode::Lazy;
    if (mode == "eager") return verify::TranslationMode::Eager;
    return verify::TranslationMode::Auto;
}

inline RunOutcome run_engine(const Network& network, const query::Query& query,
                             verify::EngineKind engine, const WeightExpr* weights,
                             std::size_t max_iterations = 0) {
    verify::VerifyOptions options;
    options.engine = engine;
    options.weights = weights;
    options.max_iterations = max_iterations;
    options.translation = env_translation_mode();
    const auto start = std::chrono::steady_clock::now();
    const auto result = verify::verify(network, query, options);
    const auto seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    record_sample(std::string(to_string(engine)) + ":" + query.text, seconds,
                  result.answer);
    return {result.answer, seconds};
}

/// Integer knob from the environment, with default.
inline std::size_t env_size(const char* name, std::size_t fallback) {
    if (const char* value = std::getenv(name)) {
        const auto parsed = std::strtoull(value, nullptr, 10);
        if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return fallback;
}

inline bool env_flag(const char* name) {
    const char* value = std::getenv(name);
    return value != nullptr && value[0] != '\0' && value[0] != '0';
}

/// Extract `--json FILE` (or `--json=FILE`) from argv before
/// benchmark::Initialize rejects it as an unknown flag.
inline std::optional<std::string> take_json_flag(int& argc, char** argv) {
    std::optional<std::string> path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            path = arg.substr(7);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return path;
}

namespace detail {
inline double percentile(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[std::min(rank, sorted.size() - 1)];
}
} // namespace detail

/// Write the collected samples + telemetry totals as a JSON report.
/// `extras` (optional) is merged into the top-level document — benchmarks
/// use it for derived metrics (e.g. bench_server's cache hit-rate) that a
/// CI reader should not have to recompute from raw counters.
/// Returns false (with a message) if the file cannot be opened.
inline bool write_json_report(const std::string& path, const std::string& bench_name,
                              json::Object extras = {}) {
    auto& store = detail::sample_store();
    const std::lock_guard lock(store.mutex);

    // Group samples by label; each group gets latency stats over its runs.
    std::map<std::string, std::vector<const Sample*>> groups;
    for (const auto& sample : store.samples) groups[sample.label].push_back(&sample);

    json::Array queries;
    double total_seconds = 0.0;
    for (const auto& [label, samples] : groups) {
        std::vector<double> sorted;
        sorted.reserve(samples.size());
        double sum = 0.0;
        for (const auto* sample : samples) {
            sorted.push_back(sample->seconds);
            sum += sample->seconds;
        }
        std::sort(sorted.begin(), sorted.end());
        total_seconds += sum;
        json::Object entry;
        entry.emplace("label", label);
        entry.emplace("runs", samples.size());
        entry.emplace("answer", samples.back()->answer);
        json::Object seconds;
        seconds.emplace("min", sorted.front());
        seconds.emplace("mean", sum / static_cast<double>(sorted.size()));
        seconds.emplace("p50", detail::percentile(sorted, 0.50));
        seconds.emplace("p90", detail::percentile(sorted, 0.90));
        seconds.emplace("p99", detail::percentile(sorted, 0.99));
        seconds.emplace("max", sorted.back());
        entry.emplace("seconds", json::Value(std::move(seconds)));
        queries.emplace_back(std::move(entry));
    }

    const auto snap = telemetry::snapshot();
    json::Object counters;
    for (std::size_t i = 0; i < telemetry::k_counter_count; ++i)
        counters.emplace(std::string(telemetry::name_of(static_cast<telemetry::Counter>(i))),
                         snap.counters[i]);
    json::Object gauges;
    for (std::size_t i = 0; i < telemetry::k_gauge_count; ++i)
        gauges.emplace(std::string(telemetry::name_of(static_cast<telemetry::Gauge>(i))),
                       snap.gauges[i]);
    // Histogram summaries in recorded units (durations: nanoseconds), so
    // scripts/bench-ci can carry engine-side percentiles into its
    // normalized report next to the bench-loop timings above.
    json::Object histograms;
    for (std::size_t i = 0; i < telemetry::k_histogram_count; ++i) {
        const auto& data = snap.histograms[i];
        if (data.count == 0) continue;
        json::Object entry;
        entry.emplace("count", data.count);
        entry.emplace("sum", data.sum);
        entry.emplace("p50", data.p50());
        entry.emplace("p90", data.p90());
        entry.emplace("p99", data.p99());
        histograms.emplace(
            std::string(telemetry::name_of(static_cast<telemetry::Histogram>(i))),
            json::Value(std::move(entry)));
    }

    json::Object document;
    document.emplace("schema", "aalwines-bench-1");
    document.emplace("bench", bench_name);
    document.emplace("queries", json::Value(std::move(queries)));
    document.emplace("totalSeconds", total_seconds);
    document.emplace("counters", json::Value(std::move(counters)));
    document.emplace("gauges", json::Value(std::move(gauges)));
    document.emplace("histograms", json::Value(std::move(histograms)));
    document.emplace("peakRssKb", telemetry::peak_rss_kb());
    for (auto& [key, value] : extras) document.emplace(key, std::move(value));

    std::ofstream out(path);
    if (!out) {
        std::cerr << bench_name << ": cannot write '" << path << "'\n";
        return false;
    }
    out << json::write(json::Value(std::move(document)), 2) << "\n";
    std::cerr << "wrote " << path << "\n";
    return true;
}

} // namespace aalwines::bench
