// Serve-mode benchmark: HTTP request latency and throughput against an
// in-process `aalwines serve` daemon on a loopback socket.  Axes:
//   - cold verification (result cache disabled) vs cache hits
//   - cache churn: a query rotation wider than the LRU, so every request
//     misses and evicts (the worst-case cache path)
//   - 1 / 4 / 16 concurrent clients hammering the cached daemon
// Each benchmark reports queries/s (items_per_second); the cache-path ones
// add a cache_hit_rate counter.  The --json report adds p50/p90/p99 latency
// per label (schema: docs/OBSERVABILITY.md) and a top-level "cache" object
// with the run's hit/miss/eviction totals and derived hit rate.

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

#include "bench_common.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace aalwines;

constexpr const char* k_query = "<ip> [.#v0] .* [v3#.] <ip> 0";

/// One blocking HTTP exchange against 127.0.0.1:port; returns the raw
/// response (or "" when the connection fails).
std::string http_roundtrip(std::uint16_t port, const std::string& method,
                           const std::string& target, const std::string& body) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
        ::close(fd);
        return "";
    }
    std::string request = method + " " + target + " HTTP/1.1\r\n" +
                          "Host: bench\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
    std::size_t sent = 0;
    while (sent < request.size()) {
        const auto n = ::send(fd, request.data() + sent, request.size() - sent, 0);
        if (n <= 0) {
            ::close(fd);
            return "";
        }
        sent += static_cast<std::size_t>(n);
    }
    std::string reply;
    char buffer[4096];
    for (;;) {
        const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) break;
        reply.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return reply;
}

/// In-process daemon with figure1 preloaded as workspace n1.
struct Daemon {
    server::Service service;
    server::Server daemon;

    explicit Daemon(std::size_t cache_capacity)
        : service([&] {
              server::ServiceConfig config;
              config.cache_capacity = cache_capacity;
              return config;
          }()),
          daemon(service, [] {
              server::ServerConfig config;
              config.workers = 16;
              config.queue_capacity = 1024;
              return config;
          }()) {
        daemon.start();
        const auto reply =
            http_roundtrip(daemon.port(), "POST", "/networks", R"({"demo":"figure1"})");
        if (reply.find(" 201 ") == std::string::npos)
            throw std::runtime_error("bench_server: preload failed:\n" + reply);
    }
    ~Daemon() { daemon.stop(); }
};

Daemon& cold_daemon() {
    static Daemon instance(0); // cache off: every request verifies
    return instance;
}

Daemon& cached_daemon() {
    static Daemon instance(256);
    return instance;
}

Daemon& churn_daemon() {
    // Capacity below the benchmark's query rotation: every request misses
    // and evicts the oldest entry.
    static Daemon instance(2);
    return instance;
}

/// Cache hits / (hits + misses) accumulated between two telemetry snapshots.
double hit_rate_between(const telemetry::Snapshot& before,
                        const telemetry::Snapshot& after) {
    const auto hits = after.counter(telemetry::Counter::server_cache_hits) -
                      before.counter(telemetry::Counter::server_cache_hits);
    const auto misses = after.counter(telemetry::Counter::server_cache_misses) -
                        before.counter(telemetry::Counter::server_cache_misses);
    return hits + misses > 0
               ? static_cast<double>(hits) / static_cast<double>(hits + misses)
               : 0.0;
}

/// POST one query, timing the exchange, and record a sample.
double timed_query(Daemon& daemon, const std::string& label,
                   const std::string& query = k_query) {
    const std::string body = std::string(R"({"query":")") + query + R"("})";
    const auto start = std::chrono::steady_clock::now();
    const auto reply = http_roundtrip(daemon.daemon.port(), "POST",
                                      "/networks/n1/query", body);
    const auto seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (reply.find("\"answer\"") == std::string::npos)
        throw std::runtime_error("bench_server: query failed:\n" + reply);
    bench::record_sample(label, seconds,
                         reply.find("\"answer\": \"yes\"") != std::string::npos
                             ? verify::Answer::Yes
                             : verify::Answer::Inconclusive);
    return seconds;
}

void bm_serve_cold(benchmark::State& state) {
    auto& daemon = cold_daemon();
    for (auto _ : state) benchmark::DoNotOptimize(timed_query(daemon, "serve:cold"));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_serve_cache_hit(benchmark::State& state) {
    auto& daemon = cached_daemon();
    timed_query(daemon, "serve:warmup"); // populate the cache
    const auto before = telemetry::snapshot();
    for (auto _ : state) benchmark::DoNotOptimize(timed_query(daemon, "serve:hit"));
    state.counters["cache_hit_rate"] = hit_rate_between(before, telemetry::snapshot());
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_serve_cache_churn(benchmark::State& state) {
    auto& daemon = churn_daemon();
    // Three distinct queries through a 2-entry LRU: every request is a miss
    // that evicts, so the loop prices the miss + evict + verify path.
    const std::string rotation[3] = {"<ip> [.#v0] .* [v3#.] <ip> 0",
                                     "<ip> [.#v0] .* [v3#.] <ip> 1",
                                     "<ip> [.#v0] .* [v3#.] <ip> 2"};
    const auto before = telemetry::snapshot();
    std::size_t next = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            timed_query(daemon, "serve:churn", rotation[next]));
        next = (next + 1) % 3;
    }
    const auto after = telemetry::snapshot();
    state.counters["cache_hit_rate"] = hit_rate_between(before, after);
    state.counters["cache_evictions"] = static_cast<double>(
        after.counter(telemetry::Counter::server_cache_evictions) -
        before.counter(telemetry::Counter::server_cache_evictions));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_serve_concurrent(benchmark::State& state) {
    auto& daemon = cached_daemon();
    const auto label = "serve:hit:clients=" + std::to_string(state.threads());
    if (state.thread_index() == 0) timed_query(daemon, "serve:warmup");
    for (auto _ : state) benchmark::DoNotOptimize(timed_query(daemon, label));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(bm_serve_cold)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_serve_cache_hit)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_serve_cache_churn)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_serve_concurrent)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
    const auto json_path = bench::take_json_flag(argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (json_path) {
        // Whole-run cache effectiveness, pre-derived for the CI reader.
        const auto snap = telemetry::snapshot();
        const auto hits = snap.counter(telemetry::Counter::server_cache_hits);
        const auto misses = snap.counter(telemetry::Counter::server_cache_misses);
        json::Object cache;
        cache.emplace("hits", hits);
        cache.emplace("misses", misses);
        cache.emplace("evictions",
                      snap.counter(telemetry::Counter::server_cache_evictions));
        cache.emplace("hitRate", hits + misses > 0
                                     ? static_cast<double>(hits) /
                                           static_cast<double>(hits + misses)
                                     : 0.0);
        json::Object extras;
        extras.emplace("cache", json::Value(std::move(cache)));
        if (!bench::write_json_report(*json_path, "bench_server", std::move(extras)))
            return 1;
    }
    return 0;
}
