// Serve-mode benchmark: HTTP request latency and throughput against an
// in-process `aalwines serve` daemon on a loopback socket.  Axes:
//   - cold verification (result cache disabled) vs cache hits
//   - 1 / 4 / 16 concurrent clients hammering the cached daemon
// Each benchmark reports queries/s (items_per_second); the --json report
// adds p50/p90/p99 latency per label (schema: docs/OBSERVABILITY.md).

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

#include "bench_common.hpp"
#include "server/server.hpp"
#include "server/service.hpp"

namespace {

using namespace aalwines;

constexpr const char* k_query = "<ip> [.#v0] .* [v3#.] <ip> 0";

/// One blocking HTTP exchange against 127.0.0.1:port; returns the raw
/// response (or "" when the connection fails).
std::string http_roundtrip(std::uint16_t port, const std::string& method,
                           const std::string& target, const std::string& body) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
        ::close(fd);
        return "";
    }
    std::string request = method + " " + target + " HTTP/1.1\r\n" +
                          "Host: bench\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
    std::size_t sent = 0;
    while (sent < request.size()) {
        const auto n = ::send(fd, request.data() + sent, request.size() - sent, 0);
        if (n <= 0) {
            ::close(fd);
            return "";
        }
        sent += static_cast<std::size_t>(n);
    }
    std::string reply;
    char buffer[4096];
    for (;;) {
        const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) break;
        reply.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return reply;
}

/// In-process daemon with figure1 preloaded as workspace n1.
struct Daemon {
    server::Service service;
    server::Server daemon;

    explicit Daemon(std::size_t cache_capacity)
        : service([&] {
              server::ServiceConfig config;
              config.cache_capacity = cache_capacity;
              return config;
          }()),
          daemon(service, [] {
              server::ServerConfig config;
              config.workers = 16;
              config.queue_capacity = 1024;
              return config;
          }()) {
        daemon.start();
        const auto reply =
            http_roundtrip(daemon.port(), "POST", "/networks", R"({"demo":"figure1"})");
        if (reply.find(" 201 ") == std::string::npos)
            throw std::runtime_error("bench_server: preload failed:\n" + reply);
    }
    ~Daemon() { daemon.stop(); }
};

Daemon& cold_daemon() {
    static Daemon instance(0); // cache off: every request verifies
    return instance;
}

Daemon& cached_daemon() {
    static Daemon instance(256);
    return instance;
}

/// POST the figure1 query once, timing the exchange, and record a sample.
double timed_query(Daemon& daemon, const std::string& label) {
    static const std::string body = std::string(R"({"query":")") + k_query + R"("})";
    const auto start = std::chrono::steady_clock::now();
    const auto reply = http_roundtrip(daemon.daemon.port(), "POST",
                                      "/networks/n1/query", body);
    const auto seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (reply.find("\"answer\"") == std::string::npos)
        throw std::runtime_error("bench_server: query failed:\n" + reply);
    bench::record_sample(label, seconds,
                         reply.find("\"answer\": \"yes\"") != std::string::npos
                             ? verify::Answer::Yes
                             : verify::Answer::Inconclusive);
    return seconds;
}

void bm_serve_cold(benchmark::State& state) {
    auto& daemon = cold_daemon();
    for (auto _ : state) benchmark::DoNotOptimize(timed_query(daemon, "serve:cold"));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_serve_cache_hit(benchmark::State& state) {
    auto& daemon = cached_daemon();
    timed_query(daemon, "serve:warmup"); // populate the cache
    for (auto _ : state) benchmark::DoNotOptimize(timed_query(daemon, "serve:hit"));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_serve_concurrent(benchmark::State& state) {
    auto& daemon = cached_daemon();
    const auto label = "serve:hit:clients=" + std::to_string(state.threads());
    if (state.thread_index() == 0) timed_query(daemon, "serve:warmup");
    for (auto _ : state) benchmark::DoNotOptimize(timed_query(daemon, label));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(bm_serve_cold)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_serve_cache_hit)->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_serve_concurrent)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
    const auto json_path = bench::take_json_flag(argc, argv);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (json_path && !bench::write_json_report(*json_path, "bench_server")) return 1;
    return 0;
}
