// Sweep engine (docs/PERFORMANCE.md): verifying a network-wide what-if
// battery — one query template over (endpoint pair × failure budget ×
// single-link-failure scenario) — through verify::run_sweep versus the
// same grid one cell at a time:
//
//   sweep_amortized    run_sweep: shared NFAs, rebased frontiers, pooled
//                      solver workspaces across the whole grid
//   sweep_one_by_one   per scenario: apply the link-failure delta, then
//                      verify_batch every instantiated query cold (same
//                      jobs / solver-threads as the sweep)
//
// The sweep case self-validates: before timing, it runs the one-by-one
// grid once and asserts every cell's canonical result JSON (stats and
// wall-clock stripped) is byte-identical — the frontier-reuse correctness
// contract.  Its "speedup_vs_onebyone" counter carries the headline ratio
// (one-by-one wall clock over the sweep's p50), so a CI gate can read it
// straight out of the report without correlating two benchmarks.
//
// AALWINES_BENCH_JOBS caps the worker pool (default: hardware, at most 4);
// AALWINES_BENCH_SWEEP_PAIRS caps the endpoint-pair axis (default 6);
// AALWINES_BENCH_SWEEP_SCENARIOS caps the failure-scenario axis (default
// 64 + baseline).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "delta/delta.hpp"
#include "io/results_json.hpp"
#include "verify/batch.hpp"
#include "verify/sweep.hpp"

namespace {

using namespace aalwines;

struct Instance {
    synthesis::SyntheticNetwork net;
    verify::SweepSpec spec;
    verify::VerifyOptions options; ///< dual engine, auto (=lazy) translation
    std::size_t jobs = 4;
};

Instance make_instance(std::size_t chains) {
    Instance instance;
    instance.net = synthesis::make_nordunet_like(chains, 1);
    const auto& topology = instance.net.network.topology;

    instance.spec.query_template = "<ip> [.#{src}] .* [{dst}#.] <ip> {k}";
    // Endpoint pairs from the LSP mesh the dataplane actually built.
    const auto n_pairs =
        std::min<std::size_t>(aalwines::bench::env_size("AALWINES_BENCH_SWEEP_PAIRS", 6),
                              instance.net.lsp_pairs.size());
    for (std::size_t p = 0; p < n_pairs; ++p)
        instance.spec.endpoint_pairs.emplace_back(
            topology.router_name(instance.net.lsp_pairs[p].first),
            topology.router_name(instance.net.lsp_pairs[p].second));
    instance.spec.failure_budgets = {1};
    // A long scenario axis is the point of a sweep: the per-chain cold cell
    // amortizes away and the steady-state mix (reused ≈ free, warm ≈ the
    // affected cone) dominates the ratio.
    instance.spec.scenarios = verify::make_single_failure_scenarios(
        instance.net.network,
        aalwines::bench::env_size("AALWINES_BENCH_SWEEP_SCENARIOS", 64));

    instance.options.translation = aalwines::bench::env_translation_mode();
    // Oversubscribing a small box just time-slices both sides; cap the
    // default worker pool at the hardware.
    const auto hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    instance.jobs =
        aalwines::bench::env_size("AALWINES_BENCH_JOBS", std::min<std::size_t>(4, hw));
    return instance;
}

/// One scenario's network snapshot, through the same delta pipeline the
/// sweep engine uses internally.
std::shared_ptr<const Network> scenario_network(const Network& base,
                                                const verify::SweepScenario& scenario) {
    if (scenario.failed_links.empty())
        return std::shared_ptr<const Network>(std::shared_ptr<const Network>{}, &base);
    delta::NetworkDelta delta;
    for (const auto& [router, interface] : scenario.failed_links) {
        delta::DeltaOp op;
        op.kind = delta::DeltaOp::Kind::LinkState;
        op.router = router;
        op.out_interface = interface;
        op.up = false;
        delta.ops.push_back(std::move(op));
    }
    return delta::apply_delta(base, delta).network;
}

/// The byte-identity form: result JSON without stats, wall-clock stripped.
std::string canonical_result(const Network& network, const std::string& query_text,
                             const verify::VerifyResult& result) {
    auto value = io::result_to_json_value(network, query_text, result, false);
    value.as_object().erase("seconds");
    return json::write(value, 0);
}

/// Run the grid the pre-sweep way: per scenario, apply the delta and push
/// every instantiated query through a cold verify_batch.  Returns wall
/// clock; fills `items` (scenario-major) when non-null.
double run_one_by_one(const Instance& instance,
                      std::vector<std::vector<verify::BatchItem>>* items) {
    std::vector<std::string> texts;
    for (const auto& pair : instance.spec.endpoint_pairs)
        for (const auto k : instance.spec.failure_budgets)
            texts.push_back(verify::instantiate_template(instance.spec.query_template,
                                                         pair.first, pair.second, k));
    const auto begin = std::chrono::steady_clock::now();
    for (const auto& scenario : instance.spec.scenarios) {
        const auto snapshot = scenario_network(instance.net.network, scenario);
        auto batch =
            verify::verify_batch(*snapshot, texts, instance.options, instance.jobs);
        if (items != nullptr) items->push_back(std::move(batch));
        benchmark::DoNotOptimize(items);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
        .count();
}

double percentile(std::vector<double>& samples, double q) {
    if (samples.empty()) return 0.0;
    const auto nth =
        static_cast<std::ptrdiff_t>(q * static_cast<double>(samples.size() - 1));
    std::nth_element(samples.begin(), samples.begin() + nth, samples.end());
    return samples[static_cast<std::size_t>(nth)];
}

void sweep_amortized(benchmark::State& state) {
    const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
    const std::size_t n_budgets = instance.spec.failure_budgets.size();
    const std::size_t n_scenarios = instance.spec.scenarios.size();

    // Validation pass (untimed): the one-by-one grid is the oracle.  Its
    // wall clock doubles as the speedup baseline — the median of a few
    // runs, so one descheduled run cannot skew the headline ratio.
    std::vector<std::vector<verify::BatchItem>> oracle;
    std::vector<double> baseline_seconds{run_one_by_one(instance, &oracle)};
    for (int rep = 1; rep < 5; ++rep)
        baseline_seconds.push_back(run_one_by_one(instance, nullptr));
    const auto one_by_one_seconds = percentile(baseline_seconds, 0.50);
    std::size_t mismatches = 0;
    {
        const auto sweep =
            verify::run_sweep(instance.net.network, instance.spec, instance.options,
                              instance.jobs);
        for (const auto& cell : sweep.cells) {
            const auto snapshot = scenario_network(instance.net.network,
                                                   instance.spec.scenarios[cell.scenario]);
            const auto& item =
                oracle[cell.scenario][cell.pair * n_budgets + cell.budget];
            if (!cell.error.empty() || !item.error.empty()) {
                if (cell.error.empty() != item.error.empty()) ++mismatches;
                continue;
            }
            if (canonical_result(*snapshot, cell.query_text, cell.result) !=
                canonical_result(*snapshot, item.query_text, item.result))
                ++mismatches;
        }
    }

    std::vector<double> sweep_seconds;
    std::size_t cold = 0, warm = 0, reused = 0;
    double cold_seconds = 0, warm_seconds = 0;
    for (auto _ : state) {
        const auto sweep =
            verify::run_sweep(instance.net.network, instance.spec, instance.options,
                              instance.jobs);
        sweep_seconds.push_back(sweep.stats.seconds);
        cold = sweep.stats.cold_saturations;
        warm = sweep.stats.reused_frontiers;
        reused = sweep.stats.shared_saturations;
        cold_seconds = warm_seconds = 0;
        for (const auto& cell : sweep.cells) {
            if (cell.path == verify::CellPath::Cold) cold_seconds += cell.seconds;
            if (cell.path == verify::CellPath::Warm) warm_seconds += cell.seconds;
        }
        benchmark::DoNotOptimize(sweep.cells.data());
    }

    const auto p50 = percentile(sweep_seconds, 0.50);
    state.counters["cells"] = static_cast<double>(
        instance.spec.endpoint_pairs.size() * n_budgets * n_scenarios);
    state.counters["cold"] = static_cast<double>(cold);
    state.counters["warm"] = static_cast<double>(warm);
    state.counters["reused"] = static_cast<double>(reused);
    state.counters["mismatches"] = static_cast<double>(mismatches);
    state.counters["p50_ms"] = p50 * 1000.0;
    state.counters["cold_cell_ms"] = cold > 0 ? cold_seconds * 1000.0 / cold : 0.0;
    state.counters["warm_cell_ms"] = warm > 0 ? warm_seconds * 1000.0 / warm : 0.0;
    state.counters["onebyone_ms"] = one_by_one_seconds * 1000.0;
    state.counters["speedup_vs_onebyone"] = p50 > 0 ? one_by_one_seconds / p50 : 0.0;
    if (mismatches > 0)
        state.SkipWithError("sweep diverged from one-by-one verification");
}

void sweep_one_by_one(benchmark::State& state) {
    const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
    std::vector<double> seconds;
    for (auto _ : state) seconds.push_back(run_one_by_one(instance, nullptr));
    state.counters["cells"] = static_cast<double>(instance.spec.endpoint_pairs.size() *
                                                  instance.spec.failure_budgets.size() *
                                                  instance.spec.scenarios.size());
    state.counters["p50_ms"] = percentile(seconds, 0.50) * 1000.0;
}

} // namespace

BENCHMARK(sweep_amortized)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK(sweep_one_by_one)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
    const auto json_path = aalwines::bench::take_json_flag(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (json_path && !aalwines::bench::write_json_report(*json_path, "bench_sweep"))
        return 1;
    return 0;
}
