// §5 claim: "we also ran the experiment for the other quantitative measures
// and the verification times did not differ significantly."  This bench
// verifies the Table-1 queries under every atomic quantity (and two
// composed vectors) and reports the per-quantity totals.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace aalwines;

struct QuantityFixture {
    synthesis::SyntheticNetwork net;
    std::vector<std::string> queries;
    std::vector<std::pair<std::string, WeightExpr>> objectives;
    std::vector<double> totals;

    QuantityFixture() {
        net = synthesis::make_nordunet_like(bench::env_size("AALWINES_BENCH_SCALE", 200),
                                            1);
        queries = synthesis::make_table1_queries(net);
        for (const char* objective :
             {"links", "hops", "distance", "failures", "tunnels",
              "hops, failures + 3*tunnels", "failures, distance"})
            objectives.emplace_back(objective, parse_weight_expression(objective));
        totals.resize(objectives.size(), 0.0);
    }
};

QuantityFixture& fixture() {
    static QuantityFixture instance;
    return instance;
}

void run_objective(benchmark::State& state, std::size_t objective_index) {
    auto& fix = fixture();
    for (auto _ : state) {
        double total = 0;
        for (const auto& text : fix.queries) {
            const auto query = query::parse_query(text, fix.net.network);
            const auto outcome =
                bench::run_engine(fix.net.network, query, verify::EngineKind::Weighted,
                                  &fix.objectives[objective_index].second);
            total += outcome.seconds;
        }
        fix.totals[objective_index] = total;
        benchmark::DoNotOptimize(total);
    }
}

void print_summary() {
    auto& fix = fixture();
    std::cout << "\n=== weighted-engine overhead per quantity (Table-1 query suite) ===\n";
    double reference = fix.totals.empty() ? 1.0 : fix.totals.front();
    for (std::size_t i = 0; i < fix.objectives.size(); ++i) {
        std::cout << std::left << std::setw(32) << fix.objectives[i].first << std::right
                  << std::fixed << std::setprecision(3) << std::setw(10)
                  << fix.totals[i] << "s   (" << std::setprecision(2)
                  << fix.totals[i] / reference << "x of '"
                  << fix.objectives.front().first << "')\n";
    }
}

} // namespace

int main(int argc, char** argv) {
    const auto json_path = bench::take_json_flag(argc, argv);
    for (std::size_t i = 0; i < fixture().objectives.size(); ++i) {
        const auto name = "Quantities/" + fixture().objectives[i].first;
        benchmark::RegisterBenchmark(
            name.c_str(), [i](benchmark::State& st) { run_objective(st, i); })
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_summary();
    if (json_path && !bench::write_json_report(*json_path, "bench_quantities")) return 1;
    return 0;
}
