// Ablation (DESIGN.md): effect of the top-of-stack reduction levels on PDA
// size and verification time, for both our demand-driven post* engine and
// the Moped-style pre* baseline.  The interesting finding this reproduces:
// the reduction barely matters for the demand-driven engine (rules that can
// never fire are also never touched by post*), but it is decisive for a
// backend that fully saturates the direct encoding.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "verify/translation.hpp"

namespace {

using namespace aalwines;

struct ReductionFixture {
    std::vector<synthesis::ZooInstance> instances;
    std::vector<std::vector<std::string>> batteries;
    double dual_seconds[3] = {0, 0, 0};
    double moped_seconds[3] = {0, 0, 0};
    std::size_t rules_before[3] = {0, 0, 0};
    std::size_t rules_after[3] = {0, 0, 0};

    ReductionFixture() {
        const auto networks = bench::env_size("AALWINES_BENCH_NETWORKS", 5);
        for (std::size_t i = 0; i < std::min(networks, synthesis::zoo_like_count());
             ++i) {
            instances.push_back(
                synthesis::make_zoo_like(i * 3 % synthesis::zoo_like_count()));
            batteries.push_back(synthesis::make_query_battery(
                instances.back().net, {.count = 4, .seed = 21 + i}));
        }
    }
};

ReductionFixture& fixture() {
    static ReductionFixture instance;
    return instance;
}

void run_level(benchmark::State& state, int level) {
    auto& fix = fixture();
    for (auto _ : state) {
        double dual_total = 0, moped_total = 0;
        std::size_t before = 0, after = 0;
        for (std::size_t i = 0; i < fix.instances.size(); ++i) {
            const auto& network = fix.instances[i].net.network;
            for (const auto& text : fix.batteries[i]) {
                const auto query = query::parse_query(text, network);
                // Size effect of the reduction alone.
                verify::Translation translation(network, query, {});
                before += translation.pda().rule_count();
                translation.reduce(level);
                after += translation.pda().rule_count();
                // End-to-end: our engine at this level...
                verify::VerifyOptions options;
                options.reduction_level = level;
                auto t0 = std::chrono::steady_clock::now();
                benchmark::DoNotOptimize(verify::verify(network, query, options));
                dual_total += std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
                // ...and the Moped baseline fed the level-reduced PDA.
                options.engine = verify::EngineKind::Moped;
                options.moped_reduction = level > 0;
                t0 = std::chrono::steady_clock::now();
                benchmark::DoNotOptimize(verify::verify(network, query, options));
                moped_total += std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
            }
        }
        fix.dual_seconds[level] = dual_total;
        fix.moped_seconds[level] = moped_total;
        fix.rules_before[level] = before;
        fix.rules_after[level] = after;
    }
}

void print_summary() {
    auto& fix = fixture();
    std::cout << "\n=== ablation: PDA reduction levels ===\n";
    std::cout << std::left << std::setw(8) << "level" << std::right << std::setw(14)
              << "rules before" << std::setw(14) << "rules after" << std::setw(11)
              << "removed" << std::setw(13) << "dual time" << std::setw(13)
              << "moped time\n";
    for (int level = 0; level < 3; ++level) {
        const auto removed_pct =
            fix.rules_before[level] == 0
                ? 0.0
                : 100.0 *
                      static_cast<double>(fix.rules_before[level] -
                                          fix.rules_after[level]) /
                      static_cast<double>(fix.rules_before[level]);
        std::cout << std::left << std::setw(8) << level << std::right << std::setw(14)
                  << fix.rules_before[level] << std::setw(14) << fix.rules_after[level]
                  << std::setw(10) << std::fixed << std::setprecision(1) << removed_pct
                  << "%" << std::setw(12) << std::setprecision(3)
                  << fix.dual_seconds[level] << "s" << std::setw(12)
                  << fix.moped_seconds[level] << "s\n";
    }
}

} // namespace

int main(int argc, char** argv) {
    const auto json_path = bench::take_json_flag(argc, argv);
    for (int level = 0; level < 3; ++level) {
        const auto name = "Reduction/level" + std::to_string(level);
        benchmark::RegisterBenchmark(
            name.c_str(), [level](benchmark::State& st) { run_level(st, level); })
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_summary();
    if (json_path && !bench::write_json_report(*json_path, "bench_reduction")) return 1;
    return 0;
}
