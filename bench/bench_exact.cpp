// Validation of the paper's core complexity claim: deciding the query
// exactly requires enumerating every failure scenario (exponential in k),
// while the over/under-approximating dual engine stays polynomial — at the
// cost of rare inconclusive answers.  This bench sweeps k and reports both
// engines' times on the same queries.

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace aalwines;

struct ExactFixture {
    synthesis::SyntheticNetwork net;
    std::vector<std::string> query_bodies; // without the trailing k
    static constexpr int k_max = 3;
    double exact_seconds[k_max + 1] = {};
    double dual_seconds[k_max + 1] = {};
    std::size_t scenarios[k_max + 1] = {};

    ExactFixture() {
        net = synthesis::build_dataplane(
            synthesis::make_ring(bench::env_size("AALWINES_BENCH_RING", 5)),
            {.service_chains = 2, .seed = 13});
        // Conclusive-NO queries: the exact engine must examine *every*
        // failure scenario before answering (a YES lets it stop early).
        const auto& topology = net.network.topology;
        const auto a = topology.router_name(net.lsp_pairs[0].first);
        const auto b = topology.router_name(net.lsp_pairs[0].second);
        // Transparency: no trace ever leaks an extra label at this exit.
        query_bodies.push_back("<smpls ip> [.#" + a + "] .* " +
                               synthesis::exit_atom(net, net.lsp_pairs[0].second) +
                               " <mpls+ smpls ip> ");
        // A packet cannot *gain* an smpls label it did not start with.
        query_bodies.push_back("<ip> [.#" + a + "] .* [.#" + b +
                               "] <smpls smpls ip> ");
        // No route delivers with two stacked bottom-of-stack labels.
        query_bodies.push_back("<smpls ip> .* <. mpls mpls mpls smpls ip> ");
    }
};

ExactFixture& fixture() {
    static ExactFixture instance;
    return instance;
}

void run_k(benchmark::State& state, int k, bool exact) {
    auto& fix = fixture();
    const auto engine = exact ? verify::EngineKind::Exact : verify::EngineKind::Dual;
    for (auto _ : state) {
        double total = 0;
        std::size_t scenarios = 0;
        for (const auto& body : fix.query_bodies) {
            const auto query =
                query::parse_query(body + std::to_string(k), fix.net.network);
            const auto start = std::chrono::steady_clock::now();
            const auto result = verify::verify(fix.net.network, query, {.engine = engine});
            total += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                   start)
                         .count();
            if (exact) {
                const auto pos = result.note.find("exact: ");
                if (pos != std::string::npos)
                    scenarios += std::stoul(result.note.substr(pos + 7));
            }
        }
        if (exact) {
            fix.exact_seconds[k] = total;
            fix.scenarios[k] = scenarios;
        } else {
            fix.dual_seconds[k] = total;
        }
        benchmark::DoNotOptimize(total);
    }
}

void print_summary() {
    auto& fix = fixture();
    std::cout << "\n=== exact (scenario enumeration) vs dual (polynomial) over k ===\n";
    std::cout << "network: ring dataplane, " << fix.net.network.topology.link_count()
              << " links, " << fix.net.network.routing.rule_count() << " rules; "
              << fix.query_bodies.size() << " queries per cell\n\n";
    std::cout << std::left << std::setw(6) << "k" << std::right << std::setw(14)
              << "scenarios" << std::setw(14) << "exact" << std::setw(14) << "dual"
              << std::setw(12) << "ratio\n";
    for (int k = 0; k <= ExactFixture::k_max; ++k) {
        std::cout << std::left << std::setw(6) << k << std::right << std::setw(14)
                  << fix.scenarios[k] << std::setw(13) << std::fixed
                  << std::setprecision(3) << fix.exact_seconds[k] << "s"
                  << std::setw(13) << fix.dual_seconds[k] << "s" << std::setw(11)
                  << std::setprecision(1) << fix.exact_seconds[k] / fix.dual_seconds[k]
                  << "x\n";
    }
    std::cout << "\nexact grows with the scenario count (Σ C(|E|,i), exponential in k);"
              << "\ndual is flat — the paper's polynomial-time what-if analysis.\n";
}

} // namespace

int main(int argc, char** argv) {
    const auto json_path = bench::take_json_flag(argc, argv);
    for (int k = 0; k <= ExactFixture::k_max; ++k) {
        benchmark::RegisterBenchmark(("Exact/k" + std::to_string(k)).c_str(),
                                     [k](benchmark::State& st) { run_k(st, k, true); })
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
        benchmark::RegisterBenchmark(("Dual/k" + std::to_string(k)).c_str(),
                                     [k](benchmark::State& st) { run_k(st, k, false); })
            ->Unit(benchmark::kSecond)
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_summary();
    if (json_path && !bench::write_json_report(*json_path, "bench_exact")) return 1;
    return 0;
}
