// Figure 4 (paper §5): per-engine verification times across a suite of
// Topology-Zoo-like networks and queries, reported as a cactus plot
// (instances solved within t seconds, per engine, times sorted ascending)
// plus the §5 inconclusive-rate statistics.
//
// Scale with AALWINES_BENCH_QUERIES (queries per network, default 6) and
// AALWINES_BENCH_FULL=1 (uses every zoo-like instance; default samples a
// prefix to stay laptop-friendly).  Per-run iteration cap stands in for the
// paper's 10-minute timeout.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace aalwines;

struct Experiment {
    std::size_t network_index;
    std::string query_text;
};

struct Series {
    std::vector<double> seconds;
    std::size_t yes = 0, no = 0, inconclusive = 0;
};

struct Fig4State {
    std::vector<synthesis::ZooInstance> instances;
    std::vector<Experiment> experiments;
    Series series[3]; // moped, dual, weighted
};

Fig4State& state() {
    static Fig4State instance = [] {
        Fig4State s;
        const auto networks = bench::env_flag("AALWINES_BENCH_FULL")
                                  ? synthesis::zoo_like_count()
                                  : bench::env_size("AALWINES_BENCH_NETWORKS", 10);
        const auto queries_per_net = bench::env_size("AALWINES_BENCH_QUERIES", 6);
        for (std::size_t i = 0; i < std::min(networks, synthesis::zoo_like_count());
             ++i) {
            s.instances.push_back(synthesis::make_zoo_like(i));
            const auto battery = synthesis::make_query_battery(
                s.instances.back().net,
                {.count = queries_per_net, .seed = 11 + i});
            for (const auto& text : battery)
                s.experiments.push_back({s.instances.size() - 1, text});
        }
        return s;
    }();
    return instance;
}

const WeightExpr k_failures_weight = weight_of(Quantity::Failures);

void run_suite(benchmark::State& bench_state, int engine_index) {
    auto& s = state();
    const verify::EngineKind engines[] = {verify::EngineKind::Moped,
                                          verify::EngineKind::Dual,
                                          verify::EngineKind::Weighted};
    const auto engine = engines[engine_index];
    const WeightExpr* weights =
        engine == verify::EngineKind::Weighted ? &k_failures_weight : nullptr;
    const auto cap = bench::env_size("AALWINES_BENCH_ITER_CAP", 2'000'000);

    for (auto _ : bench_state) {
        auto& series = s.series[engine_index];
        series = Series{};
        for (const auto& experiment : s.experiments) {
            const auto& network = s.instances[experiment.network_index].net.network;
            const auto query = query::parse_query(experiment.query_text, network);
            const auto outcome =
                bench::run_engine(network, query, engine, weights, cap);
            series.seconds.push_back(outcome.seconds);
            switch (outcome.answer) {
                case verify::Answer::Yes: ++series.yes; break;
                case verify::Answer::No: ++series.no; break;
                case verify::Answer::Inconclusive: ++series.inconclusive; break;
            }
        }
        std::sort(series.seconds.begin(), series.seconds.end());
    }
    bench_state.counters["experiments"] =
        static_cast<double>(s.series[engine_index].seconds.size());
    bench_state.counters["inconclusive"] =
        static_cast<double>(s.series[engine_index].inconclusive);
}

void print_figure() {
    auto& s = state();
    const char* names[] = {"moped", "dual", "weighted(failures)"};
    std::cout << "\n=== Figure 4: sorted verification times (cactus plot data) ===\n";
    std::cout << s.experiments.size() << " experiments over " << s.instances.size()
              << " zoo-like networks\n\n";

    // Cactus rows: time of the p-th fastest instance, per engine.
    std::cout << std::left << std::setw(22) << "solved-instances";
    for (const auto* name : names) std::cout << std::right << std::setw(22) << name;
    std::cout << "\n";
    const auto total = s.series[1].seconds.size();
    for (std::size_t p = 1; p <= total; ++p) {
        // print ~25 rows regardless of suite size
        if (total > 25 && p % std::max<std::size_t>(1, total / 25) != 0 && p != total)
            continue;
        std::cout << std::left << std::setw(22) << p << std::right << std::fixed
                  << std::setprecision(4);
        for (const auto& series : s.series) {
            if (p <= series.seconds.size())
                std::cout << std::setw(22) << series.seconds[p - 1];
            else
                std::cout << std::setw(22) << "-";
        }
        std::cout << "\n";
    }

    std::cout << "\n=== answers & inconclusive rates (paper: dual 0.57%, weighted 0.04%) ===\n";
    for (int e = 0; e < 3; ++e) {
        const auto& series = s.series[e];
        const auto n = series.seconds.size();
        double sum = 0;
        for (const auto t : series.seconds) sum += t;
        std::cout << std::left << std::setw(20) << names[e] << " yes " << std::setw(6)
                  << series.yes << " no " << std::setw(6) << series.no
                  << " inconclusive " << std::setw(4) << series.inconclusive << " ("
                  << std::setprecision(2)
                  << (n ? 100.0 * static_cast<double>(series.inconclusive) /
                              static_cast<double>(n)
                        : 0.0)
                  << "%)  total " << std::setprecision(3) << sum << "s  median "
                  << (n ? series.seconds[n / 2] : 0.0) << "s\n";
    }
    const auto total_time = [&](int e) {
        double sum = 0;
        for (const auto t : s.series[e].seconds) sum += t;
        return sum;
    };
    std::cout << "\nspeedup vs moped (total time): dual "
              << total_time(0) / total_time(1) << "x, weighted "
              << total_time(0) / total_time(2) << "x\n";
}

} // namespace

int main(int argc, char** argv) {
    const auto json_path = bench::take_json_flag(argc, argv);
    benchmark::RegisterBenchmark("Fig4/Moped", [](benchmark::State& st) {
        run_suite(st, 0);
    })->Unit(benchmark::kSecond)->Iterations(1);
    benchmark::RegisterBenchmark("Fig4/Dual", [](benchmark::State& st) {
        run_suite(st, 1);
    })->Unit(benchmark::kSecond)->Iterations(1);
    benchmark::RegisterBenchmark("Fig4/WeightedFailures", [](benchmark::State& st) {
        run_suite(st, 2);
    })->Unit(benchmark::kSecond)->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_figure();
    if (json_path && !bench::write_json_report(*json_path, "bench_fig4")) return 1;
    return 0;
}
