// Incremental what-if (docs/PERFORMANCE.md): re-verifying after a small
// routing delta through a delta::Reverifier session versus recompiling from
// scratch.  Each timed iteration applies one single-entry delta (remove or
// re-add one forwarding rule, fixed-seed random site) to the evolving
// network and re-runs the same NORDUnet-style reachability query:
//
//   incremental_reverify       PATCH + tiered re-verify (reuse / rebase)
//   incremental_cold_recompile PATCH + full cold verification
//
// The reverify case self-validates: every 8th iteration it pauses the
// clock, runs a cold verification on the same snapshot and asserts the
// canonical result JSON (stats stripped) is byte-identical — the warm
// path's correctness contract.  Tier usage is exported as counters so a
// report showing a speedup also shows *why* (reused vs warm vs cold mix).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <random>

#include "bench_common.hpp"
#include "cli/options.hpp"
#include "delta/delta.hpp"
#include "delta/reverify.hpp"
#include "io/results_json.hpp"
#include "query/query.hpp"

namespace {

using namespace aalwines;

/// One forwarding rule addressed the way the delta wire format does —
/// by router/interface/label names — so it can be removed and re-added.
struct RuleSite {
    delta::DeltaOp remove; ///< kind RemoveRule, exact-ops match
    delta::DeltaOp add;    ///< kind AddRule, restores it at its priority
};

delta::DeltaOp::LabelRef label_ref(const LabelTable& labels, Label label) {
    return {labels.type_of(label), labels.name_of(label)};
}

std::vector<RuleSite> collect_sites(const Network& network) {
    const auto& topology = network.topology;
    std::vector<RuleSite> sites;
    // remove-rule removes *every* rule matching (in, label, out, ops), so a
    // signature that occurs twice cannot be toggled one copy at a time —
    // keep only uniquely-addressable rules in the battery.
    std::vector<std::string> signatures;
    const auto signature_of = [](LinkId in_link, Label label, const ForwardingRule& rule) {
        std::string sig = std::to_string(in_link) + '/' + std::to_string(label) + '/' +
                          std::to_string(rule.out_link);
        for (const auto& op : rule.ops) {
            sig += '/';
            sig += std::to_string(static_cast<int>(op.kind));
            sig += ':';
            sig += std::to_string(op.label);
        }
        return sig;
    };
    network.routing.for_each([&](LinkId in_link, Label label, const RoutingEntry& groups) {
        for (const auto& group : groups)
            for (const auto& rule : group) signatures.push_back(signature_of(in_link, label, rule));
    });
    std::sort(signatures.begin(), signatures.end());
    const auto unique = [&](const std::string& sig) {
        const auto it = std::lower_bound(signatures.begin(), signatures.end(), sig);
        return it != signatures.end() && (it + 1 == signatures.end() || *(it + 1) != sig);
    };
    network.routing.for_each([&](LinkId in_link, Label label, const RoutingEntry& groups) {
        const auto& in = topology.link(in_link);
        for (std::size_t g = 0; g < groups.size(); ++g) {
            for (const auto& rule : groups[g]) {
                if (!unique(signature_of(in_link, label, rule))) continue;
                const auto& out = topology.link(rule.out_link);
                RuleSite site;
                auto& remove = site.remove;
                remove.kind = delta::DeltaOp::Kind::RemoveRule;
                remove.router = topology.router_name(in.target);
                remove.in_interface = topology.interface(in.target_interface).name;
                remove.out_interface = topology.interface(out.source_interface).name;
                remove.label = label_ref(network.labels, label);
                remove.match_ops = true;
                for (const auto& op : rule.ops)
                    remove.ops.push_back(
                        {op.kind, op.kind == Op::Kind::Pop
                                      ? delta::DeltaOp::LabelRef{}
                                      : label_ref(network.labels, op.label)});
                auto& add = site.add;
                add = remove;
                add.kind = delta::DeltaOp::Kind::AddRule;
                add.match_ops = false;
                add.priority = static_cast<std::uint32_t>(g + 1);
                sites.push_back(std::move(site));
            }
        }
    });
    return sites;
}

/// Per-delta turnaround percentiles (ms).  The acceptance metric is the
/// *median*: a what-if session's typical PATCH+query latency.  The mean
/// hides it — one warm re-saturation costs as much as dozens of Tier-1
/// reuses — so both distributions are exported as counters next to the
/// usual per-iteration mean.
double percentile_ms(std::vector<double>& samples, double q) {
    if (samples.empty()) return 0.0;
    const auto nth = static_cast<std::ptrdiff_t>(q * static_cast<double>(samples.size() - 1));
    std::nth_element(samples.begin(), samples.begin() + nth, samples.end());
    return samples[static_cast<std::size_t>(nth)];
}

/// The byte-identity form: result JSON without stats, wall-clock stripped.
std::string canonical_result(const Network& network, const std::string& query_text,
                             const verify::VerifyResult& result) {
    auto value = io::result_to_json_value(network, query_text, result, false);
    value.as_object().erase("seconds");
    return json::write(value, 0);
}

struct Instance {
    synthesis::SyntheticNetwork net;
    std::string query_text;
    cli::VerifySpec spec; ///< defaults: dual engine, auto (=lazy) translation
};

Instance make_instance(std::size_t chains) {
    Instance instance;
    instance.net = synthesis::make_nordunet_like(chains, 1);
    instance.query_text = synthesis::make_table1_queries(instance.net)[0];
    return instance;
}

void incremental_reverify(benchmark::State& state) {
    const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
    delta::Reverifier reverifier(std::make_shared<const Network>(instance.net.network));
    // Cold-build the session once up front; the loop then measures the
    // steady-state what-if turnaround, as the interactive tool sees it.
    (void)reverifier.verify(instance.query_text, instance.spec);
    const auto sites = collect_sites(*reverifier.network());

    // The cold oracle for the periodic identity check (clock paused).
    const auto query = query::parse_query(instance.query_text, instance.net.network);
    WeightExpr oracle_weights;
    const auto oracle_options = cli::make_verify_options(instance.spec, oracle_weights);

    std::mt19937 rng(0x5eed);
    std::uniform_int_distribution<std::size_t> pick(0, sites.size() - 1);
    std::vector<char> removed(sites.size(), 0);
    std::size_t reused = 0, warm = 0, cold = 0, mismatches = 0, iteration = 0;
    std::vector<double> turnaround_ms;

    for (auto _ : state) {
        const auto index = pick(rng);
        delta::NetworkDelta delta;
        delta.ops.push_back(removed[index] ? sites[index].add : sites[index].remove);
        removed[index] ^= 1;

        const auto begin = std::chrono::steady_clock::now();
        reverifier.apply(delta);
        const auto outcome = reverifier.verify(instance.query_text, instance.spec);
        turnaround_ms.push_back(
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - begin)
                .count());
        switch (outcome.path) {
            case delta::VerifyPath::Reused: ++reused; break;
            case delta::VerifyPath::Warm: ++warm; break;
            case delta::VerifyPath::Cold: ++cold; break;
        }

        if (++iteration % 8 == 0) {
            state.PauseTiming();
            const auto snapshot = reverifier.network();
            const auto oracle = verify::verify(*snapshot, query, oracle_options);
            if (canonical_result(*snapshot, instance.query_text, outcome.result) !=
                canonical_result(*snapshot, instance.query_text, oracle))
                ++mismatches;
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(outcome.result.answer);
    }

    state.counters["reused"] = static_cast<double>(reused);
    state.counters["warm"] = static_cast<double>(warm);
    state.counters["cold"] = static_cast<double>(cold);
    state.counters["mismatches"] = static_cast<double>(mismatches);
    state.counters["p50_ms"] = percentile_ms(turnaround_ms, 0.50);
    state.counters["p90_ms"] = percentile_ms(turnaround_ms, 0.90);
    state.counters["rules"] =
        static_cast<double>(instance.net.network.routing.rule_count());
    if (mismatches > 0) {
        state.SkipWithError("incremental re-verify diverged from cold recompile");
    }
}

void incremental_cold_recompile(benchmark::State& state) {
    const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
    // max_sessions = 0: the Reverifier still applies deltas and versions
    // snapshots, but every verify() is a from-scratch cold run — the same
    // work a PATCH-oblivious deployment would redo each time.
    delta::Reverifier reverifier(std::make_shared<const Network>(instance.net.network),
                                 /*max_sessions=*/0);
    const auto sites = collect_sites(*reverifier.network());

    std::mt19937 rng(0x5eed); // same delta sequence as incremental_reverify
    std::uniform_int_distribution<std::size_t> pick(0, sites.size() - 1);
    std::vector<char> removed(sites.size(), 0);
    std::vector<double> turnaround_ms;

    for (auto _ : state) {
        const auto index = pick(rng);
        delta::NetworkDelta delta;
        delta.ops.push_back(removed[index] ? sites[index].add : sites[index].remove);
        removed[index] ^= 1;

        const auto begin = std::chrono::steady_clock::now();
        reverifier.apply(delta);
        const auto outcome = reverifier.verify(instance.query_text, instance.spec);
        turnaround_ms.push_back(
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - begin)
                .count());
        benchmark::DoNotOptimize(outcome.result.answer);
    }
    state.counters["p50_ms"] = percentile_ms(turnaround_ms, 0.50);
    state.counters["p90_ms"] = percentile_ms(turnaround_ms, 0.90);
    state.counters["rules"] =
        static_cast<double>(instance.net.network.routing.rule_count());
}

} // namespace

BENCHMARK(incremental_reverify)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(incremental_cold_recompile)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
    const auto json_path = aalwines::bench::take_json_flag(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (json_path && !aalwines::bench::write_json_report(*json_path, "bench_incremental"))
        return 1;
    return 0;
}
