// Ablation (DESIGN.md): raw solver characteristics — post* vs pre*
// saturation on network-shaped PDAs of growing size, and the cost of the
// weighted (Dijkstra-ordered) worklist relative to the unweighted one.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "verify/translation.hpp"

namespace {

using namespace aalwines;

/// A (network, query, translation inputs) bundle reused across runs.
struct Instance {
    synthesis::SyntheticNetwork net;
    std::string query_text;
};

Instance make_instance(std::size_t ring_size) {
    Instance instance;
    instance.net = synthesis::build_dataplane(
        synthesis::make_ring(ring_size),
        {.max_lsp_pairs = ring_size * 3, .service_chains = ring_size / 2,
         .seed = ring_size});
    const auto& topology = instance.net.network.topology;
    const auto a = topology.router_name(instance.net.edge_routers.front());
    const auto b = topology.router_name(
        instance.net.edge_routers[instance.net.edge_routers.size() / 2]);
    instance.query_text = "<ip> [.#" + a + "] .* [.#" + b + "] <ip> 1";
    return instance;
}

void post_star_saturation(benchmark::State& state) {
    const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
    const auto query =
        query::parse_query(instance.query_text, instance.net.network);
    for (auto _ : state) {
        verify::Translation translation(instance.net.network, query, {});
        translation.reduce(2);
        auto aut = translation.make_initial_automaton();
        const auto stats = pda::post_star(aut);
        benchmark::DoNotOptimize(stats.transitions);
        state.counters["transitions"] = static_cast<double>(stats.transitions);
        state.counters["rules"] = static_cast<double>(translation.pda().rule_count());
    }
}

void pre_star_saturation(benchmark::State& state) {
    const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
    const auto query =
        query::parse_query(instance.query_text, instance.net.network);
    for (auto _ : state) {
        verify::Translation translation(instance.net.network, query, {});
        translation.reduce(2);
        auto aut = translation.make_final_automaton();
        const auto stats = pda::pre_star(aut);
        benchmark::DoNotOptimize(stats.transitions);
        state.counters["transitions"] = static_cast<double>(stats.transitions);
    }
}

void weighted_post_star(benchmark::State& state) {
    const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
    const auto query =
        query::parse_query(instance.query_text, instance.net.network);
    const auto weights = parse_weight_expression("hops, failures");
    for (auto _ : state) {
        verify::TranslationOptions topts;
        topts.weights = &weights;
        verify::Translation translation(instance.net.network, query, topts);
        translation.reduce(2);
        auto aut = translation.make_initial_automaton();
        benchmark::DoNotOptimize(pda::post_star(aut).transitions);
    }
}

/// Demand-driven counterpart of post_star_saturation: no reduction pass
/// (the per-state demand filter subsumes it); rules materialize as the
/// worklist reaches their states.
void post_star_saturation_lazy(benchmark::State& state) {
    const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
    const auto query =
        query::parse_query(instance.query_text, instance.net.network);
    for (auto _ : state) {
        verify::TranslationOptions topts;
        topts.lazy = true;
        verify::Translation translation(instance.net.network, query, topts);
        auto aut = translation.make_initial_automaton();
        const auto stats = pda::post_star(aut);
        benchmark::DoNotOptimize(stats.transitions);
        state.counters["transitions"] = static_cast<double>(stats.transitions);
        state.counters["rules_materialized"] =
            static_cast<double>(translation.pda().rule_count());
        state.counters["rules_total"] = static_cast<double>(translation.total_rules());
    }
}

void translation_only(benchmark::State& state) {
    const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
    const auto query =
        query::parse_query(instance.query_text, instance.net.network);
    for (auto _ : state) {
        verify::Translation translation(instance.net.network, query, {});
        benchmark::DoNotOptimize(translation.pda().rule_count());
    }
}

/// Lazy setup cost alone: control states, move index, and the rule-free
/// counting pass that sizes the interior pool — no rule is emitted.
void translation_only_lazy(benchmark::State& state) {
    const auto instance = make_instance(static_cast<std::size_t>(state.range(0)));
    const auto query =
        query::parse_query(instance.query_text, instance.net.network);
    for (auto _ : state) {
        verify::TranslationOptions topts;
        topts.lazy = true;
        verify::Translation translation(instance.net.network, query, topts);
        benchmark::DoNotOptimize(translation.total_rules());
    }
}

/// Operator-network scaling: end-to-end verification time as the rule
/// count grows (the paper's NORDUnet snapshot has >250k rules; the arg is
/// the number of synthesized service chains, ~10 rules each).
void nordunet_scaling(benchmark::State& state) {
    const auto chains = static_cast<std::size_t>(state.range(0));
    const auto net = synthesis::make_nordunet_like(chains, 1);
    const auto queries = synthesis::make_table1_queries(net);
    const auto query = query::parse_query(queries[0], net.network);
    verify::VerifyOptions options;
    options.translation = bench::env_translation_mode();
    verify::VerifyResult last;
    for (auto _ : state) {
        last = verify::verify(net.network, query, options);
        benchmark::DoNotOptimize(last);
    }
    state.counters["rules"] = static_cast<double>(net.network.routing.rule_count());
    state.counters["labels"] = static_cast<double>(net.network.labels.size());
    state.counters["pda_rules_materialized"] =
        static_cast<double>(last.stats.over.pda_rules_materialized);
    state.counters["pda_rules_total"] =
        static_cast<double>(last.stats.over.pda_rules_total);
}

void nordunet_scaling_moped(benchmark::State& state) {
    const auto chains = static_cast<std::size_t>(state.range(0));
    const auto net = synthesis::make_nordunet_like(chains, 1);
    const auto queries = synthesis::make_table1_queries(net);
    const auto query = query::parse_query(queries[0], net.network);
    verify::VerifyOptions options;
    options.engine = verify::EngineKind::Moped;
    options.translation = bench::env_translation_mode();
    for (auto _ : state) {
        benchmark::DoNotOptimize(verify::verify(net.network, query, options));
    }
    state.counters["rules"] = static_cast<double>(net.network.routing.rule_count());
}

} // namespace

BENCHMARK(post_star_saturation)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(post_star_saturation_lazy)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(pre_star_saturation)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(weighted_post_star)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(translation_only)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(translation_only_lazy)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(nordunet_scaling)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMillisecond);
BENCHMARK(nordunet_scaling_moped)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
    const auto json_path = aalwines::bench::take_json_flag(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (json_path && !aalwines::bench::write_json_report(*json_path, "bench_pda"))
        return 1;
    return 0;
}
