// Table 1 (paper §5): verification time in seconds for six operator
// queries, per engine — Moped (baseline), Dual (our unweighted
// over/under-approximation) and Failures (our weighted engine minimising
// the Failures quantity).
//
// The operator snapshot is the NORDUnet-like synthetic network (DESIGN.md
// §3).  Scale the rule count with AALWINES_BENCH_SCALE (number of service
// chains; default 400, the paper's snapshot corresponds to ~20000).

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>
#include <memory>

#include "bench_common.hpp"

namespace {

using namespace aalwines;

struct Table1Fixture {
    synthesis::SyntheticNetwork net;
    std::vector<std::string> queries;
    // answer/time grid for the summary print: [query][engine].
    std::vector<std::array<double, 3>> seconds;
    std::vector<std::array<verify::Answer, 3>> answers;

    Table1Fixture() {
        const auto scale = bench::env_size("AALWINES_BENCH_SCALE", 400);
        net = synthesis::make_nordunet_like(scale, 1);
        queries = synthesis::make_table1_queries(net);
        seconds.resize(queries.size());
        answers.resize(queries.size(),
                       {verify::Answer::Inconclusive, verify::Answer::Inconclusive,
                        verify::Answer::Inconclusive});
    }
};

Table1Fixture& fixture() {
    static Table1Fixture instance;
    return instance;
}

const WeightExpr k_failures_weight = weight_of(Quantity::Failures);

void run_cell(benchmark::State& state, std::size_t query_index, int engine_index) {
    auto& fix = fixture();
    const auto query = query::parse_query(fix.queries[query_index], fix.net.network);
    const verify::EngineKind engines[] = {verify::EngineKind::Moped,
                                          verify::EngineKind::Dual,
                                          verify::EngineKind::Weighted};
    const auto engine = engines[engine_index];
    const WeightExpr* weights =
        engine == verify::EngineKind::Weighted ? &k_failures_weight : nullptr;
    for (auto _ : state) {
        const auto outcome = bench::run_engine(fix.net.network, query, engine, weights);
        fix.seconds[query_index][static_cast<std::size_t>(engine_index)] =
            outcome.seconds;
        fix.answers[query_index][static_cast<std::size_t>(engine_index)] =
            outcome.answer;
        benchmark::DoNotOptimize(outcome);
    }
}

void register_benchmarks() {
    const char* engine_names[] = {"Moped", "Dual", "Failures"};
    for (std::size_t q = 0; q < fixture().queries.size(); ++q) {
        for (int e = 0; e < 3; ++e) {
            const auto name =
                "Table1/Q" + std::to_string(q + 1) + "/" + engine_names[e];
            benchmark::RegisterBenchmark(
                name.c_str(),
                [q, e](benchmark::State& state) { run_cell(state, q, e); })
                ->Unit(benchmark::kMillisecond)
                ->Iterations(1);
        }
    }
}

void print_table() {
    auto& fix = fixture();
    std::cout << "\n=== Table 1: query verification time (seconds) ===\n";
    std::cout << "network: " << fix.net.network.name << " — "
              << fix.net.network.topology.router_count() << " routers, "
              << fix.net.network.routing.rule_count() << " forwarding rules\n\n";
    std::cout << std::left << std::setw(78) << "Query" << std::right << std::setw(10)
              << "Moped" << std::setw(10) << "Dual" << std::setw(10) << "Failures"
              << "\n";
    for (std::size_t q = 0; q < fix.queries.size(); ++q) {
        std::cout << std::left << std::setw(78) << fix.queries[q] << std::right
                  << std::fixed << std::setprecision(3);
        for (int e = 0; e < 3; ++e) std::cout << std::setw(10) << fix.seconds[q][e];
        std::cout << "   [";
        for (int e = 0; e < 3; ++e)
            std::cout << (e ? "/" : "")
                      << verify::to_string(fix.answers[q][static_cast<std::size_t>(e)]);
        std::cout << "]\n";
    }
    double moped_total = 0, dual_total = 0, weighted_total = 0;
    for (std::size_t q = 0; q < fix.queries.size(); ++q) {
        moped_total += fix.seconds[q][0];
        dual_total += fix.seconds[q][1];
        weighted_total += fix.seconds[q][2];
    }
    std::cout << std::setprecision(2) << "\nspeedup vs Moped:  Dual "
              << moped_total / dual_total << "x, Failures "
              << moped_total / weighted_total << "x\n";
}

} // namespace

int main(int argc, char** argv) {
    const auto json_path = bench::take_json_flag(argc, argv);
    register_benchmarks();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    print_table();
    if (json_path && !bench::write_json_report(*json_path, "bench_table1")) return 1;
    return 0;
}
